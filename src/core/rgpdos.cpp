#include "core/rgpdos.hpp"

#include <cstdlib>
#include <string_view>

#include "common/rng.hpp"
#include "dbfs/sharded_dbfs.hpp"
#include "dsl/parser.hpp"
#include "kernel/placement.hpp"

namespace rgpdos::core {

namespace {

/// Env knob as u64; returns `fallback` when unset or unparsable.
std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return v;
}

}  // namespace

Result<RgpdOs::StoreStack> RgpdOs::BuildStack(const BootConfig& config,
                                              blockdev::BlockDevice* attached,
                                              std::uint64_t blocks,
                                              metrics::LockRank lock_rank,
                                              const Clock* clock,
                                              bool mount_existing) {
  // Stack order, inner to outer: raw device -> optional fault injector
  // (it models the medium plus its volatile disk cache, so it must be
  // the closest decorator to the raw device) -> optional latency model
  // (simulated IO cost) -> optional block cache (level 1 of the caching
  // stack; on the OUTSIDE so a cache hit pays neither device nor
  // simulated-latency cost, exactly like a page-cache hit skips a real
  // disk).
  StoreStack stack;
  if (attached != nullptr) {
    stack.raw = attached;
  } else {
    stack.owned_device = std::make_unique<blockdev::MemBlockDevice>(
        config.block_size, blocks);
    stack.raw = stack.owned_device.get();
  }
  blockdev::BlockDevice* dev = stack.raw;
  if (config.fault_inject) {
    stack.fault = std::make_unique<blockdev::FaultInjectingBlockDevice>(
        dev, config.fault_plan);
    dev = stack.fault.get();
  }
  if (!config.latency.IsZero()) {
    stack.latency =
        std::make_unique<blockdev::LatencyModelDevice>(dev, config.latency);
    dev = stack.latency.get();
  }
  if (config.async_io && config.ring_depth > 0) {
    // Submission/completion ring between the cost model and the cache:
    // cache hits skip the ring entirely, misses and write-backs flow
    // through it as batched submissions.
    stack.async =
        std::make_unique<blockdev::AsyncBlockDevice>(dev, config.ring_depth);
    dev = stack.async.get();
  }
  if (config.cache_blocks != 0) {
    stack.cache = std::make_unique<blockdev::BlockCacheDevice>(
        dev, config.cache_blocks, config.cache_shards);
    dev = stack.cache.get();
  }
  stack.top = dev;
  if (mount_existing) {
    // Boot-time crash recovery: mount the surviving image. Replay,
    // checkpoint and the inodefs.recovery.* metrics happen inside Mount;
    // the freshly built cache above starts cold, so nothing pre-crash
    // can be served from RAM.
    RGPD_ASSIGN_OR_RETURN(
        stack.store,
        inodefs::InodeStore::Mount(dev, clock, lock_rank, config.io_retry,
                                   config.journal_extents));
  } else {
    inodefs::InodeStore::Options options;
    options.inode_count = config.inode_count;
    options.journal_blocks = config.journal_blocks;
    options.io_retry = config.io_retry;
    options.lock_rank = lock_rank;
    options.journal_extents = config.journal_extents;
    RGPD_ASSIGN_OR_RETURN(
        stack.store, inodefs::InodeStore::Format(dev, options, clock));
  }
  return stack;
}

Result<std::unique_ptr<RgpdOs>> RgpdOs::Boot(const BootConfig& boot_config) {
  BootConfig config = boot_config;
  // RGPDOS_CACHE=0 forces every cache level off without touching code —
  // the CI matrix runs the whole test suite in both configurations.
  if (const char* env = std::getenv("RGPDOS_CACHE");
      env != nullptr && std::string_view(env) == "0") {
    config.cache_blocks = 0;
    config.cache_record_entries = 0;
    config.cache_decisions = false;
  }
  // RGPDOS_FAULT_* knobs force fault injection onto the PD devices, the
  // same way RGPDOS_CACHE reconfigures caching: the recovery CI job runs
  // the suite under several seeds without a code change. RGPDOS_FAULT_SEED
  // derives a whole plan; the specific knobs override individual fields.
  config.fault_seed = EnvU64("RGPDOS_FAULT_SEED", config.fault_seed);
  if (config.fault_seed != 0) {
    config.fault_plan = blockdev::FaultPlan::FromSeed(
        config.fault_seed, /*max_writes=*/4096);
    config.fault_inject = true;
  }
  config.fault_plan.crash_at_write =
      EnvU64("RGPDOS_FAULT_CRASH_AT", config.fault_plan.crash_at_write);
  config.fault_plan.torn_bytes = static_cast<std::uint32_t>(
      EnvU64("RGPDOS_FAULT_TORN_BYTES", config.fault_plan.torn_bytes));
  if (EnvU64("RGPDOS_FAULT_WRITEBACK",
             config.fault_plan.volatile_write_back ? 1 : 0) != 0) {
    config.fault_plan.volatile_write_back = true;
  }
  config.fault_plan.transient_error_every = EnvU64(
      "RGPDOS_FAULT_TRANSIENT_EVERY", config.fault_plan.transient_error_every);
  if (config.fault_plan.crash_at_write != 0 ||
      config.fault_plan.volatile_write_back ||
      config.fault_plan.transient_error_every != 0) {
    config.fault_inject = true;
  }
  // RGPDOS_ASYNC=0 is the async-block-layer kill switch: no ring, and
  // the simulated device queue depth drops to 1 so the serialized
  // baseline is what the cost model actually charges for.
  if (EnvU64("RGPDOS_ASYNC", config.async_io ? 1 : 0) == 0) {
    config.async_io = false;
  }
  config.ring_depth = static_cast<std::size_t>(
      EnvU64("RGPDOS_RING_DEPTH", config.ring_depth));
  if (config.ring_depth == 0) config.async_io = false;
  if (!config.async_io) config.latency.queue_depth = 1;
  // RGPDOS_EXTENTS=0 reverts the PD journals to whole-block records.
  if (EnvU64("RGPDOS_EXTENTS", config.journal_extents ? 1 : 0) == 0) {
    config.journal_extents = false;
  }
  // RGPDOS_AUDIT_DURABLE=0 is the durable-audit kill switch: in-memory
  // audit ring only and the legacy flat processing log, exactly the
  // pre-pipeline behaviour. The remaining RGPDOS_AUDIT_* knobs tune the
  // pipeline without a rebuild (CI runs tiny queues to force
  // backpressure under tsan).
  if (EnvU64("RGPDOS_AUDIT_DURABLE", config.audit_durable ? 1 : 0) == 0) {
    config.audit_durable = false;
  }
  config.audit_queue_entries = static_cast<std::size_t>(
      EnvU64("RGPDOS_AUDIT_QUEUE", config.audit_queue_entries));
  config.audit_backpressure_ms =
      EnvU64("RGPDOS_AUDIT_BACKPRESSURE_MS", config.audit_backpressure_ms);
  config.audit_segment_bytes =
      EnvU64("RGPDOS_AUDIT_SEGMENT_BYTES", config.audit_segment_bytes);
  config.audit_hot_window = static_cast<std::size_t>(
      EnvU64("RGPDOS_AUDIT_HOT_WINDOW", config.audit_hot_window));
  if (config.audit_queue_entries == 0) config.audit_queue_entries = 1;
  // RGPDOS_RETENTION: 0 disables the sweep daemon, 1 enables it with the
  // configured knobs, N > 1 enables it with N pages per sweep.
  if (const std::uint64_t retention =
          EnvU64("RGPDOS_RETENTION",
                 config.retention_enabled ? 1 : 0);
      retention == 0) {
    config.retention_enabled = false;
  } else {
    config.retention_enabled = true;
    if (retention > 1) {
      config.retention_pages_per_sweep = static_cast<std::size_t>(retention);
    }
  }
  if (config.attach_dbfs_device != nullptr && config.split_sensitive) {
    return InvalidArgument(
        "attach_dbfs_device carries one image; split_sensitive needs two "
        "devices");
  }
  // RGPDOS_SHARDS: boot the PD spine N-way sharded (DESIGN.md §12). The
  // env override is ignored for attach-mode boots — a single surviving
  // image is by definition one shard — so the sharded CI matrix doesn't
  // break crash-recovery tests. An EXPLICIT shards > 1 with an attached
  // device is a contradiction and fails loudly instead of misbooting.
  if (config.attach_dbfs_device == nullptr) {
    config.shards = static_cast<std::size_t>(
        EnvU64("RGPDOS_SHARDS", config.shards));
  } else if (config.shards > 1) {
    return InvalidArgument(
        "attach_dbfs_device carries one single-shard image; boot with "
        "shards == 1 (got " +
        std::to_string(config.shards) + ")");
  }
  if (config.shards == 0) config.shards = 1;
  std::unique_ptr<RgpdOs> os(new RgpdOs());

  if (config.use_sim_clock) {
    auto sim = std::make_unique<SimClock>();
    os->sim_clock_ = sim.get();
    os->clock_ = std::move(sim);
  } else {
    os->clock_ = std::make_unique<SystemClock>();
  }
  if (config.seed != 0) {
    os->rng_.Reseed(config.seed);
  } else {
    os->rng_.ReseedFromEntropy();
  }

  os->sentinel_ = std::make_unique<sentinel::Sentinel>(
      sentinel::SecurityPolicy::RgpdDefault(), os->clock_.get(),
      &os->audit_);

  // DBFS on its own device(s) (paper: DBFS is reachable only through
  // rgpdOS components; the NPD filesystem is a separate, generally
  // accessible store). Each shard is a full vertical StoreStack — see
  // BuildStack for the decorator order — replicated `shards` times;
  // with split_sensitive every shard also gets a sensitive sibling
  // (paper §2's storage separation: its own blocks, inodes and journal,
  // its own cache/latency stack, so sensitive PD never shares cache
  // lines with ordinary PD; its mutex ranks just below the primary
  // store's so DBFS can nest sensitive-store writes inside a
  // primary-store group-commit scope).
  os->pd_shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    blockdev::BlockDevice* attached =
        i == 0 ? config.attach_dbfs_device : nullptr;
    RGPD_ASSIGN_OR_RETURN(
        StoreStack stack,
        BuildStack(config, attached, config.dbfs_blocks,
                   metrics::LockRank::kInodefs, os->clock_.get(),
                   /*mount_existing=*/attached != nullptr));
    os->pd_shards_.push_back(std::move(stack));
  }
  if (config.split_sensitive) {
    os->sensitive_shards_.reserve(config.shards);
    for (std::size_t i = 0; i < config.shards; ++i) {
      RGPD_ASSIGN_OR_RETURN(
          StoreStack stack,
          BuildStack(config, /*attached=*/nullptr, config.sensitive_blocks,
                     metrics::LockRank::kInodefsSensitive, os->clock_.get(),
                     /*mount_existing=*/false));
      os->sensitive_shards_.push_back(std::move(stack));
    }
  }
  if (config.shards == 1) {
    if (config.attach_dbfs_device != nullptr) {
      RGPD_ASSIGN_OR_RETURN(
          os->dbfs_,
          dbfs::Dbfs::Mount(os->pd_shards_[0].store.get(),
                            os->sentinel_.get(), os->clock_.get()));
    } else {
      RGPD_ASSIGN_OR_RETURN(
          os->dbfs_,
          dbfs::Dbfs::Format(os->pd_shards_[0].store.get(),
                             os->sentinel_.get(), os->clock_.get(),
                             config.split_sensitive
                                 ? os->sensitive_shards_[0].store.get()
                                 : nullptr));
    }
  } else {
    std::vector<inodefs::InodeStore*> stores;
    std::vector<inodefs::InodeStore*> sensitive_stores;
    stores.reserve(config.shards);
    for (const StoreStack& stack : os->pd_shards_) {
      stores.push_back(stack.store.get());
    }
    for (const StoreStack& stack : os->sensitive_shards_) {
      sensitive_stores.push_back(stack.store.get());
    }
    RGPD_ASSIGN_OR_RETURN(
        os->dbfs_,
        dbfs::ShardedDbfs::Format(stores, os->sentinel_.get(),
                                  os->clock_.get(), sensitive_stores));
  }
  // Level 2: decoded-record cache with generation invalidation (the
  // facade splits the budget across shards).
  if (config.cache_record_entries != 0) {
    os->dbfs_->EnableRecordCache(config.cache_record_entries);
  }

  os->npd_device_ = std::make_unique<blockdev::MemBlockDevice>(
      config.block_size, config.npd_blocks);
  inodefs::InodeStore::Options npd_options;
  npd_options.inode_count = config.inode_count;
  npd_options.journal_blocks = config.journal_blocks;
  npd_options.io_retry = config.io_retry;
  RGPD_ASSIGN_OR_RETURN(
      os->npd_store_,
      inodefs::InodeStore::Format(os->npd_device_.get(), npd_options,
                                  os->clock_.get()));
  RGPD_ASSIGN_OR_RETURN(inodefs::FileSystem npd_fs,
                        inodefs::FileSystem::Create(os->npd_store_.get()));
  os->npd_fs_ = std::make_unique<inodefs::FileSystem>(std::move(npd_fs));

  os->log_ = std::make_unique<ProcessingLog>(os->clock_.get());
  // The processing log lives on shard 0's store at any shard count.
  {
    inodefs::InodeStore* log_store = os->pd_shards_[0].store.get();
    const inodefs::InodeId log_inode = os->dbfs_->processing_log_inode();
    auditlog::SegmentedLogOptions log_segments;
    log_segments.segment_bytes = config.audit_segment_bytes;
    log_segments.compress = config.audit_compress;
    RGPD_ASSIGN_OR_RETURN(Bytes log_raw, log_store->ReadAll(log_inode));
    if (!log_raw.empty()) {
      // Attach-mode boot over a populated image: RELOAD the persisted
      // log (chain-verified) so appends continue the chain instead of
      // restarting at seq 0 on top of the old entries, which would
      // corrupt the durable chain. Auto-detects segmented vs legacy
      // flat format.
      RGPD_RETURN_IF_ERROR(
          os->log_->LoadFromStore(log_store, log_inode, log_segments));
    } else if (config.audit_durable) {
      RGPD_RETURN_IF_ERROR(os->log_->AttachSegmentedStore(
          log_store, log_inode, log_segments));
    } else {
      os->log_->AttachStore(log_store, log_inode);
    }
    if (config.audit_durable && os->log_->segmented_durability()) {
      // Bound the in-memory window only when trimmed history stays
      // reachable through the sealed segments (a legacy flat log keeps
      // everything in memory, as before).
      os->log_->SetHotWindow(config.audit_hot_window);
    }

    // Durable audit pipeline on the same store. Skipped when the image
    // predates the audit manifest inode (4-field master record).
    const inodefs::InodeId audit_inode = os->dbfs_->audit_manifest_inode();
    if (config.audit_durable && audit_inode != inodefs::kInvalidInode) {
      sentinel::AuditPipelineOptions audit_options;
      audit_options.queue_capacity = config.audit_queue_entries;
      audit_options.batch_entries = config.audit_batch_entries;
      audit_options.backpressure_deadline_micros =
          config.audit_backpressure_ms * 1000;
      audit_options.segments = log_segments;
      RGPD_ASSIGN_OR_RETURN(
          os->audit_pipeline_,
          sentinel::DurableAuditPipeline::Create(log_store, audit_inode,
                                                 audit_options));
      os->audit_.AttachPipeline(os->audit_pipeline_.get());
    }
  }

  // DED worker pool. worker_threads == 1 keeps the historical inline
  // execution (no pool, no executor); 0 lets the kernel's CPU partition
  // decide how many cores the PD path gets.
  unsigned lanes = config.worker_threads;
  if (lanes == 0) {
    lanes = kernel::CpuPartition::Plan().ded_workers;
  }
  if (lanes > 1) {
    os->executor_ = std::make_unique<DedExecutor>(lanes - 1, config.seed);
  }
  // The boot thread is stream 0 of the boot seed; executor workers took
  // streams 1..N-1.
  SeedThreadRng(config.seed, 0);

  os->ps_ = std::make_unique<ProcessingStore>(
      os->dbfs_.get(), os->sentinel_.get(), os->log_.get(),
      os->clock_.get(), os->executor_.get(), config.cache_decisions);
  os->builtins_ = std::make_unique<Builtins>(os->dbfs_.get(), os->log_.get(),
                                             os->clock_.get(), &os->rng_);
  os->rights_ = std::make_unique<Rights>(os->dbfs_.get(), os->log_.get(),
                                         os->builtins_.get());
  os->anonymizer_ = std::make_unique<Anonymizer>(
      os->dbfs_.get(), os->log_.get(), os->clock_.get());
  os->receipts_ = std::make_unique<ReceiptIssuer>(
      os->rng_.NextBytes(32), os->clock_.get());
  RGPD_ASSIGN_OR_RETURN(Authority authority,
                        Authority::Create(os->rng_,
                                          config.authority_key_bits));
  os->authority_ = std::make_unique<Authority>(std::move(authority));

  os->audit_.SetCapacity(config.audit_entries);
  RetentionOptions retention_options;
  retention_options.sweep_interval_micros =
      config.retention_interval_ms * 1000;
  retention_options.pages_per_sweep = config.retention_pages_per_sweep;
  retention_options.burst_pages = config.retention_burst_pages;
  retention_options.crypto_erase = config.retention_crypto_erase;
  RetentionSweeper::Deps retention_deps;
  retention_deps.dbfs = os->dbfs_.get();
  retention_deps.clock = os->clock_.get();
  retention_deps.audit = &os->audit_;
  retention_deps.log = os->log_.get();
  retention_deps.authority_key = &os->authority_->public_key();
  retention_deps.rng = &os->rng_;
  retention_deps.executor = os->executor_.get();
  // Yield to any in-flight ps_invoke: compliance background work must
  // not contend with application traffic for the store locks.
  ProcessingStore* ps = os->ps_.get();
  retention_deps.foreground_busy = [ps] {
    return ps->invokes_in_flight() > 0;
  };
  os->retention_ = std::make_unique<RetentionSweeper>(
      std::move(retention_deps), retention_options);
  if (config.retention_enabled) {
    os->retention_->Start();
  }
  return os;
}

RgpdOs::~RgpdOs() {
  // Stop producers first (the sweep daemon audits every expiry), then
  // detach and stop the pipeline so its queue drains to the store while
  // the store is still alive. The remaining members unwind implicitly.
  retention_.reset();
  if (audit_pipeline_ != nullptr) {
    audit_.AttachPipeline(nullptr);
    audit_pipeline_->Stop();
  }
}

Result<ConsentReceipt> RgpdOs::RevokeConsentWithReceipt(
    const PdRef& ref, const std::string& purpose) {
  RGPD_RETURN_IF_ERROR(builtins_->RevokeConsent(ref, purpose));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(sentinel::Domain::kDed,
                                           ref.record_id));
  return receipts_->Issue(m.subject_id, ref.record_id, purpose, "revoke",
                          "none", m.version);
}

Result<std::size_t> RgpdOs::DeclareTypes(std::string_view dsl_source) {
  RGPD_ASSIGN_OR_RETURN(dsl::Program program, dsl::Parse(dsl_source));
  for (const dsl::TypeDecl& decl : program.types) {
    RGPD_RETURN_IF_ERROR(
        dbfs_->CreateType(sentinel::Domain::kSysadmin, decl));
  }
  return program.types.size();
}

Result<ProcessingId> RgpdOs::RegisterProcessingSource(
    std::string_view dsl_source, ProcessingFn fn, ImplManifest manifest) {
  RGPD_ASSIGN_OR_RETURN(dsl::PurposeDecl purpose,
                        dsl::ParsePurpose(dsl_source));
  return ps_->Register(sentinel::Domain::kApplication, std::move(purpose),
                       std::move(fn), std::move(manifest));
}

}  // namespace rgpdos::core
