// Art. 33/34 breach drill: given a compromised purpose (a leaked API
// key, a rogue processing registered under it, a breached downstream),
// enumerate every data subject whose PD that purpose actually touched —
// straight from the chain-verified processing log, which is the Art. 30
// record of processing activities. The 72-hour notification clock needs
// exactly this list: not "who could have been affected" but "whose PD
// the purpose processed, exported, or collected, and when".
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "core/processing_log.hpp"

namespace rgpdos::core {

struct BreachDrillReport {
  std::string purpose;                 ///< the compromised purpose
  /// Every subject whose PD the purpose touched (processed / exported /
  /// collected / updated / copied — outcomes where PD actually flowed;
  /// filtered and aborted attempts never exposed data).
  std::set<dbfs::SubjectId> subjects;
  std::uint64_t entries_scanned = 0;   ///< log entries examined
  std::uint64_t pd_touches = 0;        ///< entries where PD flowed
  TimeMicros first_touch = 0;
  TimeMicros last_touch = 0;
  /// The evidence is only as good as its chain: true iff the hot-window
  /// hash chain (and the durable chain, when a store is attached)
  /// verified before the scan.
  bool chain_verified = false;
  /// Art. 33 notification draft for the supervisory authority.
  std::string notification;

  /// Machine-readable form for the regulator workload.
  [[nodiscard]] std::string ToJson() const;
};

/// Run the drill: verify the log's hash chain, then scan every entry
/// (hot window + durable segments past it) attributing PD-flow outcomes
/// of `purpose` to their subjects. Fails if the chain does not verify —
/// a breach report built on tampered evidence is worse than none.
Result<BreachDrillReport> DrillCompromisedPurpose(
    const ProcessingLog& log, const std::string& purpose);

}  // namespace rgpdos::core
