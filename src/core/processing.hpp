// The processing vocabulary: what a data processing (purpose +
// implementation, paper §2) looks like to rgpdOS.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "core/pdref.hpp"
#include "db/schema.hpp"
#include "dsl/ast.hpp"
#include "sentinel/syscall_filter.hpp"

namespace rgpdos::core {

/// Read surface handed to an operator-written F_pd^r function for ONE
/// record. Field access is mediated: only fields inside the effective
/// scope (subject consent ∩ purpose declaration) are readable — the
/// mechanism behind Listing 2's `if (user.age)` availability check.
class ProcessingInput {
 public:
  ProcessingInput(const dsl::TypeDecl* type, const db::Row* row,
                  std::set<std::string> visible_fields,
                  dbfs::SubjectId subject, dbfs::RecordId record,
                  sentinel::SyscallContext* syscalls,
                  std::set<std::string>* field_trace = nullptr)
      : type_(type),
        row_(row),
        visible_(std::move(visible_fields)),
        subject_(subject),
        record_(record),
        syscalls_(syscalls),
        field_trace_(field_trace) {}

  /// Is the field visible under the current consent scope?
  [[nodiscard]] bool Has(std::string_view field) const {
    return visible_.count(std::string(field)) != 0;
  }
  /// Value of a visible field; kConsentDenied if outside the scope.
  [[nodiscard]] Result<db::Value> Field(std::string_view field) const;

  [[nodiscard]] const dsl::TypeDecl& type() const { return *type_; }
  [[nodiscard]] dbfs::SubjectId subject() const { return subject_; }
  [[nodiscard]] dbfs::RecordId record() const { return record_; }
  [[nodiscard]] const std::set<std::string>& visible_fields() const {
    return visible_;
  }
  /// The filtered syscall surface (seccomp analogue).
  [[nodiscard]] sentinel::SyscallContext& syscalls() { return *syscalls_; }

 private:
  const dsl::TypeDecl* type_;
  const db::Row* row_;
  std::set<std::string> visible_;
  dbfs::SubjectId subject_;
  dbfs::RecordId record_;
  sentinel::SyscallContext* syscalls_;
  /// When set, every successful Field() read is recorded here — the
  /// observation channel of the runtime purpose verifier.
  std::set<std::string>* field_trace_;
};

/// What one execution of a processing over one record produces.
struct ProcessingOutput {
  /// Derived PD: a row of the purpose's declared output type. rgpdOS
  /// wraps it in a membrane (ded_build_membrane) and stores it
  /// (ded_store); the caller only ever sees the resulting PdRef.
  std::optional<db::Row> derived_row;
  /// Non-personal result, returned to the application verbatim.
  Bytes npd;
};

/// An operator-written F_pd^r implementation ("implemented in any
/// programming language" — here, any C++ callable).
using ProcessingFn =
    std::function<Result<ProcessingOutput>(ProcessingInput&)>;

/// What the implementation *claims* about itself at registration time —
/// the artefact ps_register matches against the purpose declaration.
/// (Checking an implementation against its purpose automatically is an
/// open problem the paper defers to future work, §3(4); the manifest is
/// the declared-intent stand-in that makes the check mechanisable.)
struct ImplManifest {
  /// Purpose the implementation claims to serve; empty => rejected
  /// outright ("if the function has no specified purpose, it is
  /// rejected").
  std::string claimed_purpose;
  /// Fields the implementation reads.
  std::set<std::string> fields_read;
  /// Type of the PD it derives, empty if none.
  std::string output_type;
};

/// Per-stage wall-clock nanoseconds of one DED pipeline run (Fig 4).
struct StageTimings {
  std::int64_t type2req_ns = 0;
  std::int64_t load_membrane_ns = 0;
  std::int64_t filter_ns = 0;
  std::int64_t load_data_ns = 0;
  std::int64_t execute_ns = 0;
  std::int64_t build_membrane_ns = 0;
  std::int64_t store_ns = 0;
  std::int64_t return_ns = 0;

  [[nodiscard]] std::int64_t total_ns() const {
    return type2req_ns + load_membrane_ns + filter_ns + load_data_ns +
           execute_ns + build_membrane_ns + store_ns + return_ns;
  }
};

/// ded_return: references to derived PD plus NPD — never PD by value.
struct InvokeResult {
  std::vector<PdRef> derived;
  std::vector<Bytes> npd_outputs;
  std::uint64_t records_considered = 0;
  std::uint64_t records_filtered_out = 0;  ///< consent denied / expired
  std::uint64_t records_processed = 0;
  std::uint64_t syscalls_denied = 0;
  StageTimings timings;
};

/// A row predicate evaluated INSIDE the DED, after ded_load_data and
/// before ded_execute: rows that fail never reach the implementation.
/// Predicates may only reference fields of the purpose's declared view —
/// an application cannot use them to probe fields it was never granted.
struct FieldPredicate {
  enum class Op : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string field;
  Op op = Op::kEq;
  db::Value value;

  [[nodiscard]] bool Matches(const db::Value& candidate) const {
    const int cmp = candidate.Compare(value);
    switch (op) {
      case Op::kEq: return cmp == 0;
      case Op::kNe: return cmp != 0;
      case Op::kLt: return cmp < 0;
      case Op::kLe: return cmp <= 0;
      case Op::kGt: return cmp > 0;
      case Op::kGe: return cmp >= 0;
    }
    return false;
  }
};

/// ps_invoke arguments (paper §2): a processing reference, optionally a
/// specific PD reference, a collection method, and whether collection
/// should run first to initialise DBFS.
struct InvokeOptions {
  std::optional<PdRef> target;       ///< absent = every record of the type
  std::string collection_method;     ///< e.g. "web_form"
  bool collect_first = false;
  /// Conjunction of row predicates (see FieldPredicate).
  std::vector<FieldPredicate> predicates;
};

using ProcessingId = std::uint64_t;

}  // namespace rgpdos::core
