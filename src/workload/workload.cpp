#include "workload/workload.hpp"

namespace rgpdos::workload {

namespace {

db::Value RandomValueFor(const db::FieldDef& field, std::uint64_t subject,
                         Rng& rng, const std::string& marker) {
  switch (field.type) {
    case db::ValueType::kInt:
      // Year-of-birth-ish by default; callers treat ints generically.
      return db::Value(rng.NextInRange(1940, 2010));
    case db::ValueType::kDouble:
      return db::Value(rng.NextDouble() * 1000.0);
    case db::ValueType::kBool:
      return db::Value(rng.NextBool());
    case db::ValueType::kString: {
      std::string s = field.name + "_" + std::to_string(subject) + "_" +
                      rng.NextName(8);
      if (!marker.empty()) s += "_" + marker;
      return db::Value(std::move(s));
    }
    case db::ValueType::kBytes: {
      Bytes b;
      b.reserve(16 + marker.size());
      for (int i = 0; i < 16; ++i) {
        b.push_back(static_cast<std::uint8_t>(rng.NextU64()));
      }
      b.insert(b.end(), marker.begin(), marker.end());
      return db::Value(std::move(b));
    }
    case db::ValueType::kNull:
      return db::Value();
  }
  return db::Value();
}

std::vector<GeneratedRecord> Generate(const dsl::TypeDecl& decl,
                                      std::size_t count, Rng& rng,
                                      bool marked) {
  std::vector<GeneratedRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    GeneratedRecord record;
    record.subject_id = i + 1;  // subject ids are 1-based
    const std::string marker =
        marked ? SubjectMarker(record.subject_id) : std::string{};
    record.row.reserve(decl.fields.size());
    for (const db::FieldDef& field : decl.fields) {
      record.row.push_back(
          RandomValueFor(field, record.subject_id, rng, marker));
    }
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace

std::string SubjectMarker(std::uint64_t subject_id) {
  return "PDMARK" + std::to_string(subject_id) + "XZQJ";
}

std::vector<GeneratedRecord> GeneratePopulation(const dsl::TypeDecl& decl,
                                                std::size_t count,
                                                Rng& rng) {
  return Generate(decl, count, rng, /*marked=*/false);
}

std::vector<GeneratedRecord> GenerateMarkedPopulation(
    const dsl::TypeDecl& decl, std::size_t count, Rng& rng) {
  return Generate(decl, count, rng, /*marked=*/true);
}

std::string_view GdprOpName(GdprOp op) {
  switch (op) {
    case GdprOp::kCreateRecord: return "create";
    case GdprOp::kReadRecord: return "read";
    case GdprOp::kUpdateRecord: return "update";
    case GdprOp::kDeleteRecord: return "delete";
    case GdprOp::kRightOfAccess: return "access";
    case GdprOp::kRightToErasure: return "erasure";
    case GdprOp::kRightToPortability: return "portability";
    case GdprOp::kConsentWithdrawal: return "consent_withdrawal";
    case GdprOp::kAuditSubject: return "audit_subject";
    case GdprOp::kAuditPurpose: return "audit_purpose";
  }
  return "?";
}

OpMix::OpMix(std::string name,
             std::vector<std::pair<GdprOp, double>> weights)
    : name_(std::move(name)) {
  // Store the cumulative distribution.
  double cumulative = 0;
  weights_.reserve(weights.size());
  for (auto& [op, w] : weights) {
    cumulative += w;
    weights_.emplace_back(op, cumulative);
  }
  total_ = cumulative;
}

GdprOp OpMix::Sample(Rng& rng) const {
  const double x = rng.NextDouble() * total_;
  for (const auto& [op, cumulative] : weights_) {
    if (x < cumulative) return op;
  }
  return weights_.back().first;
}

OpMix OpMix::Controller() {
  return OpMix("controller", {{GdprOp::kCreateRecord, 0.25},
                              {GdprOp::kReadRecord, 0.45},
                              {GdprOp::kUpdateRecord, 0.20},
                              {GdprOp::kDeleteRecord, 0.05},
                              {GdprOp::kRightOfAccess, 0.03},
                              {GdprOp::kConsentWithdrawal, 0.02}});
}

OpMix OpMix::Customer() {
  return OpMix("customer", {{GdprOp::kRightOfAccess, 0.40},
                            {GdprOp::kRightToPortability, 0.20},
                            {GdprOp::kConsentWithdrawal, 0.25},
                            {GdprOp::kRightToErasure, 0.15}});
}

OpMix OpMix::Regulator() {
  return OpMix("regulator", {{GdprOp::kAuditSubject, 0.60},
                             {GdprOp::kAuditPurpose, 0.40}});
}

}  // namespace rgpdos::workload
