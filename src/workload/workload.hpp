// Workload generation: synthetic subject populations and GDPR-rights
// operation mixes modelled on GDPRbench (paper ref [17]), which organises
// load by actor role — controller (day-to-day CRUD), customer (subjects
// exercising their rights), regulator (audits).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "db/schema.hpp"
#include "dsl/ast.hpp"

namespace rgpdos::workload {

/// One synthetic subject's record for a given type.
struct GeneratedRecord {
  std::uint64_t subject_id = 0;
  db::Row row;
};

/// Deterministically generate `count` records conforming to `decl`
/// (field values derived from the field type: names, years, flags...).
std::vector<GeneratedRecord> GeneratePopulation(const dsl::TypeDecl& decl,
                                                std::size_t count, Rng& rng);

/// A distinctive plaintext marker embedded in a subject's string fields,
/// used by leak experiments to scavenge raw devices for that subject's
/// PD. The marker is long and unique enough not to occur by chance.
std::string SubjectMarker(std::uint64_t subject_id);

/// Same generation, but every string field carries SubjectMarker(id).
std::vector<GeneratedRecord> GenerateMarkedPopulation(
    const dsl::TypeDecl& decl, std::size_t count, Rng& rng);

// ---- operation mixes ----------------------------------------------------------

enum class GdprOp : std::uint8_t {
  // Controller role.
  kCreateRecord = 0,
  kReadRecord,
  kUpdateRecord,
  kDeleteRecord,
  // Customer role (subject rights).
  kRightOfAccess,
  kRightToErasure,
  kRightToPortability,
  kConsentWithdrawal,
  // Regulator role.
  kAuditSubject,
  kAuditPurpose,
};

std::string_view GdprOpName(GdprOp op);

/// Weighted operation mix with a sampler.
class OpMix {
 public:
  OpMix(std::string name,
        std::vector<std::pair<GdprOp, double>> weights);

  [[nodiscard]] GdprOp Sample(Rng& rng) const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::pair<GdprOp, double>>& weights()
      const {
    return weights_;
  }

  /// GDPRbench-inspired role mixes.
  static OpMix Controller();  ///< 95% CRUD, 5% rights
  static OpMix Customer();    ///< rights-dominated
  static OpMix Regulator();   ///< audit-dominated

 private:
  std::string name_;
  std::vector<std::pair<GdprOp, double>> weights_;  // cumulative
  double total_ = 0;
};

}  // namespace rgpdos::workload
