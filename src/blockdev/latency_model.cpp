// LatencyModelDevice is header-only; this TU anchors the library target.
#include "blockdev/latency_model.hpp"
