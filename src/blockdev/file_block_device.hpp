// File-backed block device: persists the simulated medium in a host file
// so examples can survive process restarts (mount/unmount flows).
#pragma once

#include <cstdio>
#include <string>

#include "blockdev/block_device.hpp"

namespace rgpdos::blockdev {

class FileBlockDevice final : public BlockDevice {
 public:
  /// Create or open `path`, sized to block_size * block_count bytes.
  static Result<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, std::uint32_t block_size,
      std::uint64_t block_count);

  ~FileBlockDevice() override;
  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  [[nodiscard]] std::uint32_t block_size() const override {
    return block_size_;
  }
  [[nodiscard]] std::uint64_t block_count() const override {
    return block_count_;
  }

  Status ReadBlock(BlockIndex index, Bytes& out) override;
  Status WriteBlock(BlockIndex index, ByteSpan data) override;
  Status Flush() override;

  [[nodiscard]] const DeviceStats& stats() const override { return stats_; }

 private:
  FileBlockDevice(std::FILE* file, std::uint32_t block_size,
                  std::uint64_t block_count)
      : file_(file), block_size_(block_size), block_count_(block_count) {}

  std::FILE* file_;
  std::uint32_t block_size_;
  std::uint64_t block_count_;
  // Serialises the shared seek+read/write FILE cursor (same contract as
  // MemBlockDevice: stats() needs quiescence).
  metrics::OrderedMutex mu_{metrics::LockRank::kBlockdev, "blockdev.file"};
  DeviceStats stats_;
};

}  // namespace rgpdos::blockdev
