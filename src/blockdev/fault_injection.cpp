#include "blockdev/fault_injection.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::blockdev {

FaultPlan FaultPlan::FromSeed(std::uint64_t seed, std::uint64_t max_writes) {
  Rng rng(Rng::StreamSeed(seed, 0xFA17));
  FaultPlan plan;
  plan.seed = seed;
  if (max_writes > 0) {
    plan.crash_at_write = 1 + rng.NextBelow(max_writes);
  }
  // One third clean crashes, one third torn (partial sector), one third
  // behind a volatile disk cache that drops unflushed blocks.
  switch (rng.NextBelow(3)) {
    case 0:
      break;
    case 1:
      plan.torn_bytes = static_cast<std::uint32_t>(1 + rng.NextBelow(512));
      break;
    default:
      plan.volatile_write_back = true;
      break;
  }
  // Half the plans also stress the transient-error retry path.
  if (rng.NextBool()) {
    plan.transient_error_every = 5 + rng.NextBelow(45);
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = "FaultPlan{seed=" + std::to_string(seed);
  out += " crash_at_write=" + std::to_string(crash_at_write);
  out += " torn_bytes=" + std::to_string(torn_bytes);
  out += std::string(" volatile_write_back=") +
         (volatile_write_back ? "true" : "false");
  out += " transient_error_every=" + std::to_string(transient_error_every);
  out += " bit_flip_at_write=" + std::to_string(bit_flip_at_write);
  out += "}";
  return out;
}

FaultInjectingBlockDevice::FaultInjectingBlockDevice(BlockDevice* inner,
                                                     FaultPlan plan)
    : inner_(inner), plan_(plan) {}

Status FaultInjectingBlockDevice::MaybeTransientLocked(const char* op) {
  ++io_seen_;
  if (plan_.transient_error_every != 0 &&
      io_seen_ % plan_.transient_error_every == 0) {
    ++stats_.transient_errors;
    RGPD_METRIC_COUNT("storage.fault.transient_errors");
    return IoError(std::string("injected transient error on ") + op);
  }
  return Status::Ok();
}

void FaultInjectingBlockDevice::CrashLocked() {
  crashed_ = true;
  ++stats_.crashes;
  stats_.dropped_blocks += write_back_.size();
  RGPD_METRIC_COUNT("storage.fault.crashes");
  RGPD_METRIC_COUNT_N("storage.fault.dropped_blocks", write_back_.size());
  // The disk cache dies with the power: unflushed blocks never existed
  // as far as the medium is concerned.
  write_back_.clear();
}

void FaultInjectingBlockDevice::Crash() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (!crashed_) CrashLocked();
}

void FaultInjectingBlockDevice::PowerCycle() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  crashed_ = false;
  write_back_.clear();
}

bool FaultInjectingBlockDevice::crashed() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return crashed_;
}

FaultStats FaultInjectingBlockDevice::fault_stats() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return stats_;
}

Status FaultInjectingBlockDevice::ReadBlock(BlockIndex index, Bytes& out) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (crashed_) {
    ++stats_.crashed_rejections;
    return Crashed("device crashed: read rejected");
  }
  ++stats_.reads_seen;
  RGPD_RETURN_IF_ERROR(MaybeTransientLocked("read"));
  // The disk cache services reads for blocks it still holds.
  if (auto it = write_back_.find(index); it != write_back_.end()) {
    out = it->second;
    return Status::Ok();
  }
  return inner_->ReadBlock(index, out);
}

Status FaultInjectingBlockDevice::WriteBlock(BlockIndex index,
                                             ByteSpan data) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (crashed_) {
    ++stats_.crashed_rejections;
    return Crashed("device crashed: write rejected");
  }
  const std::uint64_t write_index = ++stats_.writes_seen;
  RGPD_RETURN_IF_ERROR(MaybeTransientLocked("write"));

  Bytes image(data.begin(), data.end());
  if (plan_.bit_flip_at_write != 0 &&
      write_index == plan_.bit_flip_at_write && !image.empty()) {
    Rng rng(Rng::StreamSeed(plan_.seed, write_index));
    const std::uint64_t bit = rng.NextBelow(image.size() * 8);
    image[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++stats_.bit_flips;
    RGPD_METRIC_COUNT("storage.fault.bit_flips");
  }

  if (plan_.crash_at_write != 0 && write_index == plan_.crash_at_write) {
    // Power loss mid-write: the first torn_bytes of the sector made it to
    // the platter (bypassing the dying disk cache), the rest did not.
    const std::uint32_t keep =
        std::min<std::uint32_t>(plan_.torn_bytes,
                                static_cast<std::uint32_t>(image.size()));
    if (keep > 0) {
      Bytes merged;
      Status read = inner_->ReadBlock(index, merged);
      if (read.ok()) {
        std::copy(image.begin(), image.begin() + keep, merged.begin());
        (void)inner_->WriteBlock(index, merged);
        ++stats_.torn_writes;
        RGPD_METRIC_COUNT("storage.fault.torn_writes");
      }
    }
    CrashLocked();
    return Crashed("injected crash at write #" +
                   std::to_string(write_index));
  }

  if (plan_.volatile_write_back) {
    write_back_[index] = std::move(image);
    return Status::Ok();
  }
  return inner_->WriteBlock(index, image);
}

Status FaultInjectingBlockDevice::Flush() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (crashed_) {
    ++stats_.crashed_rejections;
    return Crashed("device crashed: flush rejected");
  }
  ++stats_.flushes_seen;
  // Drain the disk cache to the medium, then barrier the inner device.
  for (auto& [index, image] : write_back_) {
    RGPD_RETURN_IF_ERROR(inner_->WriteBlock(index, image));
  }
  write_back_.clear();
  return inner_->Flush();
}

}  // namespace rgpdos::blockdev
