// TrafficRecorder: a snooping decorator that keeps a copy of every byte
// ever written to the device — including bytes later overwritten.
//
// Rationale (paper §1): "the filesystem's logging mechanism can compromise
// the GDPR's right to be forgotten as data deleted by the DB engine can
// still be present in the filesystem's logs". The recorder generalises
// that observation to the whole device history: if plaintext PD *ever*
// crossed the bus, an adversary with the medium (or its journal) may
// recover it. Benches use it to compare the baseline's history leakage
// against rgpdOS's.
#pragma once

#include <memory>
#include <vector>

#include "blockdev/block_device.hpp"

namespace rgpdos::blockdev {

class TrafficRecorder final : public BlockDevice {
 public:
  explicit TrafficRecorder(std::unique_ptr<BlockDevice> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::uint32_t block_size() const override {
    return inner_->block_size();
  }
  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_->block_count();
  }

  Status ReadBlock(BlockIndex index, Bytes& out) override {
    return inner_->ReadBlock(index, out);
  }
  Status WriteBlock(BlockIndex index, ByteSpan data) override;
  Status Flush() override { return inner_->Flush(); }

  [[nodiscard]] const DeviceStats& stats() const override {
    return inner_->stats();
  }

  /// Number of historical writes that contained `needle` in plaintext.
  [[nodiscard]] std::uint64_t CountHistoricalWritesContaining(
      ByteSpan needle) const;

  /// Total bytes of write history retained.
  [[nodiscard]] std::uint64_t history_bytes() const { return history_bytes_; }

  void ClearHistory();

  [[nodiscard]] BlockDevice& inner() { return *inner_; }

 private:
  struct WriteRecord {
    BlockIndex index;
    Bytes data;
  };
  std::unique_ptr<BlockDevice> inner_;
  std::vector<WriteRecord> history_;
  std::uint64_t history_bytes_ = 0;
};

}  // namespace rgpdos::blockdev
