#include "blockdev/block_device.hpp"

#include <algorithm>
#include <cstring>

namespace rgpdos::blockdev {

Status BlockDevice::ReadBatch(const std::vector<BlockIndex>& indexes,
                              std::vector<Bytes>& out) {
  out.resize(indexes.size());
  for (std::size_t i = 0; i < indexes.size(); ++i) {
    RGPD_RETURN_IF_ERROR(ReadBlock(indexes[i], out[i]));
  }
  return Status::Ok();
}

Status BlockDevice::WriteBatch(const std::vector<BatchWrite>& writes) {
  for (const BatchWrite& w : writes) {
    RGPD_RETURN_IF_ERROR(WriteBlock(w.index, w.data));
  }
  return Status::Ok();
}

MemBlockDevice::MemBlockDevice(std::uint32_t block_size,
                               std::uint64_t block_count)
    : block_size_(block_size),
      block_count_(block_count),
      storage_(std::size_t(block_size) * block_count, 0) {}

Status MemBlockDevice::ReadBlock(BlockIndex index, Bytes& out) {
  if (index >= block_count_) {
    return OutOfRange("read past end of device");
  }
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  out.resize(block_size_);
  std::memcpy(out.data(), storage_.data() + index * block_size_, block_size_);
  ++stats_.reads;
  stats_.bytes_read += block_size_;
  return Status::Ok();
}

Status MemBlockDevice::WriteBlock(BlockIndex index, ByteSpan data) {
  if (index >= block_count_) {
    return OutOfRange("write past end of device");
  }
  if (data.size() != block_size_) {
    return InvalidArgument("block write must be exactly block_size bytes");
  }
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::memcpy(storage_.data() + index * block_size_, data.data(),
              block_size_);
  ++stats_.writes;
  stats_.bytes_written += block_size_;
  return Status::Ok();
}

Status MemBlockDevice::Flush() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  ++stats_.flushes;
  return Status::Ok();
}

Status MemBlockDevice::ReadBatch(const std::vector<BlockIndex>& indexes,
                                 std::vector<Bytes>& out) {
  out.resize(indexes.size());
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  for (std::size_t i = 0; i < indexes.size(); ++i) {
    const BlockIndex index = indexes[i];
    if (index >= block_count_) {
      return OutOfRange("read past end of device");
    }
    out[i].resize(block_size_);
    std::memcpy(out[i].data(), storage_.data() + index * block_size_,
                block_size_);
    ++stats_.reads;
    stats_.bytes_read += block_size_;
  }
  return Status::Ok();
}

Status MemBlockDevice::WriteBatch(const std::vector<BatchWrite>& writes) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  for (const BatchWrite& w : writes) {
    if (w.index >= block_count_) {
      return OutOfRange("write past end of device");
    }
    if (w.data.size() != block_size_) {
      return InvalidArgument("block write must be exactly block_size bytes");
    }
    std::memcpy(storage_.data() + w.index * block_size_, w.data.data(),
                block_size_);
    ++stats_.writes;
    stats_.bytes_written += block_size_;
  }
  return Status::Ok();
}

std::uint64_t CountBlocksContaining(BlockDevice& device, ByteSpan needle) {
  if (needle.empty()) return 0;
  std::uint64_t hits = 0;
  Bytes window;  // previous-block tail + current block, to catch straddles
  Bytes block;
  const std::size_t overlap = needle.size() > 1 ? needle.size() - 1 : 0;
  Bytes tail;
  for (BlockIndex i = 0; i < device.block_count(); ++i) {
    if (!device.ReadBlock(i, block).ok()) break;
    window = tail;
    window.insert(window.end(), block.begin(), block.end());
    if (ContainsSubsequence(window, needle)) ++hits;
    if (overlap > 0 && block.size() >= overlap) {
      tail.assign(block.end() - static_cast<std::ptrdiff_t>(overlap),
                  block.end());
    } else {
      tail = block;
    }
  }
  return hits;
}

}  // namespace rgpdos::blockdev
