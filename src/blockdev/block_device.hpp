// Block device abstraction — the hardware boundary of the simulation.
//
// Everything rgpdOS persists (DBFS inode trees, the NPD filesystem, the
// journal) ultimately lands in numbered fixed-size blocks of a BlockDevice.
// Because the device is simulated we can do what a real testbed cannot:
// scan *every* byte that ever hit the medium and ask "does any plaintext
// personal data survive here?" — the core measurement of the Fig-2
// journal-leak experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::blockdev {

using BlockIndex = std::uint64_t;

/// Cumulative traffic counters, maintained by every implementation.
struct DeviceStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t flushes = 0;
};

/// One write of a batched submission. `data` must stay alive until the
/// batch call returns; it must be exactly block_size bytes.
struct BatchWrite {
  BlockIndex index = 0;
  ByteSpan data;
};

/// Abstract fixed-block-size device.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  [[nodiscard]] virtual std::uint32_t block_size() const = 0;
  [[nodiscard]] virtual std::uint64_t block_count() const = 0;

  /// Read one block into `out` (resized to block_size).
  virtual Status ReadBlock(BlockIndex index, Bytes& out) = 0;
  /// Write one block; `data` must be exactly block_size bytes.
  virtual Status WriteBlock(BlockIndex index, ByteSpan data) = 0;
  /// Durability barrier (accounted; a no-op for in-memory devices).
  virtual Status Flush() = 0;

  /// Read many blocks in one submission. `out` is resized to match
  /// `indexes`. The default walks ReadBlock; devices that can do better
  /// (one lock hold, amortised simulated latency) override it. On error
  /// the prefix of `out` before the failing index is valid.
  virtual Status ReadBatch(const std::vector<BlockIndex>& indexes,
                           std::vector<Bytes>& out);
  /// Write many blocks in one submission, in order. The default walks
  /// WriteBlock; on error, writes before the failing entry may have been
  /// applied (same torn-prefix semantics as a crashed serial loop).
  virtual Status WriteBatch(const std::vector<BatchWrite>& writes);

  /// Drop any cached copy of `index` held by this device or a decorator
  /// in front of it. The erasure/scrub paths call this for every block
  /// they zero, so no plaintext survives in a cache after a GDPR purge.
  /// No-op for devices that cache nothing.
  virtual void InvalidateCached(BlockIndex index) { (void)index; }

  [[nodiscard]] virtual const DeviceStats& stats() const = 0;

  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return std::uint64_t(block_size()) * block_count();
  }
};

/// RAM-backed device; the default substrate for tests and benches.
///
/// ReadBlock/WriteBlock/Flush are serialised by a rank-kBlockdev mutex
/// (the innermost lock of the enforcement stack). stats() and RawMedium()
/// return unsynchronised views: call them only while no other thread is
/// doing IO (the leak scans and bench reports are offline by design).
class MemBlockDevice final : public BlockDevice {
 public:
  MemBlockDevice(std::uint32_t block_size, std::uint64_t block_count);

  [[nodiscard]] std::uint32_t block_size() const override {
    return block_size_;
  }
  [[nodiscard]] std::uint64_t block_count() const override {
    return block_count_;
  }

  Status ReadBlock(BlockIndex index, Bytes& out) override;
  Status WriteBlock(BlockIndex index, ByteSpan data) override;
  Status Flush() override;
  /// Batched ops hold the device mutex once for the whole submission.
  Status ReadBatch(const std::vector<BlockIndex>& indexes,
                   std::vector<Bytes>& out) override;
  Status WriteBatch(const std::vector<BatchWrite>& writes) override;

  [[nodiscard]] const DeviceStats& stats() const override { return stats_; }

  /// Direct view of the raw medium — the leak experiments' scan surface.
  [[nodiscard]] ByteSpan RawMedium() const {
    return ByteSpan(storage_.data(), storage_.size());
  }

 private:
  std::uint32_t block_size_;
  std::uint64_t block_count_;
  metrics::OrderedMutex mu_{metrics::LockRank::kBlockdev, "blockdev.mem"};
  Bytes storage_;
  DeviceStats stats_;
};

/// Scan an entire device for a plaintext byte pattern. Returns the number
/// of blocks in which `needle` occurs (block-straddling occurrences are
/// found via an overlap window).
std::uint64_t CountBlocksContaining(BlockDevice& device, ByteSpan needle);

}  // namespace rgpdos::blockdev
