// Fault-injecting block device — the crash-consistency test substrate.
//
// A BlockDevice decorator that sits directly above the raw medium (below
// the latency model and the block cache) and injects the storage fault
// classes a crash-consistent design must survive:
//
//   * crash-at-write-N: the Nth write "loses power" mid-flight; it (and
//     every later IO) fails with kCrashed, and only what already reached
//     the inner device survives for the next mount;
//   * torn writes: the crashing write persists only its first K bytes —
//     the half-written-sector case that journal CRCs must catch;
//   * dropped flushes: with the volatile write-back buffer enabled,
//     writes land in a RAM buffer that models a disk cache and reach the
//     medium only on Flush(); a crash discards everything unflushed, so
//     an fflush-without-fsync bug becomes an observable data loss;
//   * transient IO errors: every Nth read/write fails once with kIoError
//     and succeeds when retried — the inodefs retry-with-backoff path's
//     workload;
//   * bit flips: one payload bit of write #M is inverted (silent medium
//     corruption; detectable in the journal via record CRCs).
//
// All faults are deterministic functions of the FaultPlan, so a failing
// CI run is reproducible from the plan alone (FaultPlan::ToString is
// uploaded as the artifact). Counters surface as storage.fault.* metrics.
//
// Concurrency: one rank-kFaultInject OrderedMutex serialises the fault
// state (IO counters, crash flag, write-back buffer). It is acquired
// above the inner device's rank-kBlockdev lock, matching the decorator's
// position in the stack; block-cache shard locks (rank 15) are never held
// across decorated IO, so the cache can sit outside as usual.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "blockdev/block_device.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::blockdev {

/// Deterministic fault schedule. Write/IO indices are 1-based counts of
/// operations issued to THIS device (what the OS asked for, not what the
/// medium absorbed) so a plan replays exactly on a deterministic workload.
struct FaultPlan {
  /// Crash while servicing the Nth write (0 = never). The write fails
  /// with kCrashed after persisting `torn_bytes` of the block, and every
  /// subsequent read/write/flush fails with kCrashed until PowerCycle().
  std::uint64_t crash_at_write = 0;
  /// Bytes of the crashing write that still reach the medium (torn
  /// write). 0 = nothing; >= block size = the whole block made it.
  std::uint32_t torn_bytes = 0;
  /// Model a volatile disk write cache: writes buffer in RAM and reach
  /// the inner device only on Flush(); a crash/power-cycle discards the
  /// buffer. Turns missing durability barriers into observable loss.
  bool volatile_write_back = false;
  /// Every Nth read or write (one shared IO counter) fails once with a
  /// transient kIoError; the retried operation succeeds (0 = never).
  std::uint64_t transient_error_every = 0;
  /// Invert one bit of the payload of write #M before it persists
  /// (0 = never). The bit position derives from `seed`.
  std::uint64_t bit_flip_at_write = 0;
  /// Seed for derived choices (bit position); recorded for artifacts.
  std::uint64_t seed = 0;

  /// Derive a randomized-but-reproducible plan: crash point in
  /// [1, max_writes], torn/write-back/transient parameters all seeded.
  /// Bit flips are excluded — silent corruption of checkpointed data is
  /// detectable, not survivable, so it gets targeted tests instead.
  static FaultPlan FromSeed(std::uint64_t seed, std::uint64_t max_writes);

  /// One-line human/CI-artifact rendering of every knob.
  [[nodiscard]] std::string ToString() const;
};

/// Relaxed-atomic accounting of injected faults (mirrors the
/// storage.fault.* metrics; safe to read while IO is in flight).
struct FaultStats {
  std::uint64_t writes_seen = 0;   ///< writes issued to this device
  std::uint64_t reads_seen = 0;
  std::uint64_t flushes_seen = 0;
  std::uint64_t crashes = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t dropped_blocks = 0;    ///< write-back blocks lost at crash
  std::uint64_t transient_errors = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t crashed_rejections = 0;  ///< IO refused while crashed
};

class FaultInjectingBlockDevice final : public BlockDevice {
 public:
  /// `inner` is borrowed and must outlive the decorator. The inner
  /// device's content is "the medium": everything that survives a crash.
  FaultInjectingBlockDevice(BlockDevice* inner, FaultPlan plan);

  [[nodiscard]] std::uint32_t block_size() const override {
    return inner_->block_size();
  }
  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_->block_count();
  }

  Status ReadBlock(BlockIndex index, Bytes& out) override;
  Status WriteBlock(BlockIndex index, ByteSpan data) override;
  Status Flush() override;
  void InvalidateCached(BlockIndex index) override {
    inner_->InvalidateCached(index);
  }

  /// Medium traffic only (decorator adds none of its own) — leak scans
  /// and IO reports keep meaning "what reached the disk". Buffered
  /// write-back blocks are NOT counted until a Flush drains them.
  [[nodiscard]] const DeviceStats& stats() const override {
    return inner_->stats();
  }

  /// Trigger the crash manually (power button): discards the write-back
  /// buffer and fails all subsequent IO with kCrashed.
  void Crash();
  /// "Reboot": clear the crashed flag and discard any write-back buffer
  /// (a real disk cache comes up empty). IO counters keep running so a
  /// plan's indices stay monotonic across the cycle.
  void PowerCycle();

  [[nodiscard]] bool crashed() const;
  [[nodiscard]] FaultStats fault_stats() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] BlockDevice& inner() { return *inner_; }

 private:
  /// Returns kIoError once per `transient_error_every` IOs. Caller holds mu_.
  Status MaybeTransientLocked(const char* op);
  /// Drops the buffer, counts losses, sets crashed_. Caller holds mu_.
  void CrashLocked();

  BlockDevice* inner_;  // borrowed
  const FaultPlan plan_;
  mutable metrics::OrderedMutex mu_{metrics::LockRank::kFaultInject,
                                    "blockdev.fault"};
  bool crashed_ = false;
  std::uint64_t io_seen_ = 0;  ///< reads + writes, for transient faults
  FaultStats stats_;
  /// Volatile disk cache (plan.volatile_write_back): block -> pending image.
  std::unordered_map<BlockIndex, Bytes> write_back_;
};

}  // namespace rgpdos::blockdev
