// Device cost model: wraps any BlockDevice and accounts simulated time per
// operation, so benches can report device-normalized costs that do not
// depend on the host machine's RAM bandwidth. Profiles approximate an NVMe
// SSD and a SATA HDD.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "blockdev/block_device.hpp"

namespace rgpdos::blockdev {

/// Per-operation simulated costs in nanoseconds. `queue_depth` is the
/// device's native command-queue depth: a batch of n same-kind ops
/// submitted together costs op_ns * (1 + (n-1)/queue_depth) — the first
/// op pays full latency, the rest overlap at the queue's parallelism.
/// Serial submission (queue_depth 1, or per-op ReadBlock/WriteBlock
/// calls) pays full cost per op.
struct LatencyProfile {
  std::uint64_t read_ns = 0;
  std::uint64_t write_ns = 0;
  std::uint64_t flush_ns = 0;
  std::uint64_t queue_depth = 1;

  static LatencyProfile Nvme() { return {10'000, 20'000, 50'000, 16}; }
  static LatencyProfile Hdd() { return {4'000'000, 4'500'000, 8'000'000, 4}; }
  static LatencyProfile Zero() { return {}; }

  [[nodiscard]] bool IsZero() const {
    return read_ns == 0 && write_ns == 0 && flush_ns == 0;
  }

  /// Simulated cost of a batch of `n` ops each costing `op_ns` serially.
  [[nodiscard]] std::uint64_t BatchCost(std::uint64_t op_ns,
                                        std::uint64_t n) const {
    if (n == 0) return 0;
    const std::uint64_t depth = queue_depth == 0 ? 1 : queue_depth;
    return op_ns + op_ns * (n - 1) / depth;
  }
};

/// Decorator: forwards to an inner device, accumulating simulated time.
/// Accumulation is a relaxed atomic — the decorator sits under the block
/// cache on the concurrent PD path, and per-op totals don't need any
/// ordering beyond "every op counted".
class LatencyModelDevice final : public BlockDevice {
 public:
  LatencyModelDevice(std::unique_ptr<BlockDevice> inner,
                     LatencyProfile profile)
      : owned_(std::move(inner)), inner_(owned_.get()), profile_(profile) {}
  /// Non-owning: decorate a device whose lifetime the caller manages.
  LatencyModelDevice(BlockDevice* inner, LatencyProfile profile)
      : inner_(inner), profile_(profile) {}

  [[nodiscard]] std::uint32_t block_size() const override {
    return inner_->block_size();
  }
  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_->block_count();
  }

  Status ReadBlock(BlockIndex index, Bytes& out) override {
    simulated_ns_.fetch_add(profile_.read_ns, std::memory_order_relaxed);
    return inner_->ReadBlock(index, out);
  }
  Status WriteBlock(BlockIndex index, ByteSpan data) override {
    simulated_ns_.fetch_add(profile_.write_ns, std::memory_order_relaxed);
    return inner_->WriteBlock(index, data);
  }
  Status Flush() override {
    simulated_ns_.fetch_add(profile_.flush_ns, std::memory_order_relaxed);
    return inner_->Flush();
  }
  /// Batched ops amortise latency across the device queue: the whole
  /// submission costs op_ns * (1 + (n-1)/queue_depth) simulated time
  /// instead of n * op_ns.
  Status ReadBatch(const std::vector<BlockIndex>& indexes,
                   std::vector<Bytes>& out) override {
    simulated_ns_.fetch_add(
        profile_.BatchCost(profile_.read_ns, indexes.size()),
        std::memory_order_relaxed);
    return inner_->ReadBatch(indexes, out);
  }
  Status WriteBatch(const std::vector<BatchWrite>& writes) override {
    simulated_ns_.fetch_add(
        profile_.BatchCost(profile_.write_ns, writes.size()),
        std::memory_order_relaxed);
    return inner_->WriteBatch(writes);
  }
  void InvalidateCached(BlockIndex index) override {
    inner_->InvalidateCached(index);
  }

  [[nodiscard]] const DeviceStats& stats() const override {
    return inner_->stats();
  }

  /// Total simulated device time since construction / last Reset.
  [[nodiscard]] std::uint64_t simulated_ns() const {
    return simulated_ns_.load(std::memory_order_relaxed);
  }
  void ResetSimulatedTime() {
    simulated_ns_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] BlockDevice& inner() { return *inner_; }

 private:
  std::unique_ptr<BlockDevice> owned_;  ///< null when non-owning
  BlockDevice* inner_;                  // borrowed (or aliases owned_)
  LatencyProfile profile_;
  std::atomic<std::uint64_t> simulated_ns_{0};
};

}  // namespace rgpdos::blockdev
