// Device cost model: wraps any BlockDevice and accounts simulated time per
// operation, so benches can report device-normalized costs that do not
// depend on the host machine's RAM bandwidth. Profiles approximate an NVMe
// SSD and a SATA HDD.
#pragma once

#include <cstdint>
#include <memory>

#include "blockdev/block_device.hpp"

namespace rgpdos::blockdev {

/// Per-operation simulated costs in nanoseconds.
struct LatencyProfile {
  std::uint64_t read_ns = 0;
  std::uint64_t write_ns = 0;
  std::uint64_t flush_ns = 0;

  static LatencyProfile Nvme() { return {10'000, 20'000, 50'000}; }
  static LatencyProfile Hdd() { return {4'000'000, 4'500'000, 8'000'000}; }
  static LatencyProfile Zero() { return {}; }
};

/// Decorator: forwards to an inner device, accumulating simulated time.
class LatencyModelDevice final : public BlockDevice {
 public:
  LatencyModelDevice(std::unique_ptr<BlockDevice> inner,
                     LatencyProfile profile)
      : inner_(std::move(inner)), profile_(profile) {}

  [[nodiscard]] std::uint32_t block_size() const override {
    return inner_->block_size();
  }
  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_->block_count();
  }

  Status ReadBlock(BlockIndex index, Bytes& out) override {
    simulated_ns_ += profile_.read_ns;
    return inner_->ReadBlock(index, out);
  }
  Status WriteBlock(BlockIndex index, ByteSpan data) override {
    simulated_ns_ += profile_.write_ns;
    return inner_->WriteBlock(index, data);
  }
  Status Flush() override {
    simulated_ns_ += profile_.flush_ns;
    return inner_->Flush();
  }

  [[nodiscard]] const DeviceStats& stats() const override {
    return inner_->stats();
  }

  /// Total simulated device time since construction / last Reset.
  [[nodiscard]] std::uint64_t simulated_ns() const { return simulated_ns_; }
  void ResetSimulatedTime() { simulated_ns_ = 0; }

  [[nodiscard]] BlockDevice& inner() { return *inner_; }

 private:
  std::unique_ptr<BlockDevice> inner_;
  LatencyProfile profile_;
  std::uint64_t simulated_ns_ = 0;
};

}  // namespace rgpdos::blockdev
