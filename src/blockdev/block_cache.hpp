// Sharded LRU block cache — level 1 of the PD read-path caching stack.
//
// A write-through BlockDevice decorator: reads are served from N
// lock-sharded LRU shards; writes always go to the inner device first and
// then update (never allocate) a cached copy, so the cache can not hold a
// block the device has not durably seen. There is deliberately no
// write-allocate: journal appends and subject-root rewrites would
// otherwise flush the working set on every mutation.
//
// Concurrency: each shard is guarded by a rank-kBlockCache OrderedMutex —
// strictly below the device rank, which is legal because a shard lock is
// NEVER held across inner-device IO. A miss records the shard's epoch,
// drops the lock, reads the inner device, re-locks and fills only if the
// epoch is unchanged; any concurrent write or invalidation in the shard
// bumps the epoch and the (possibly stale) fill is skipped. Correctness
// therefore never depends on the LRU state — only freshness does.
//
// GDPR: erasure and scrub call InvalidateCached for every block they
// zero, so no plaintext survives in this cache after a purge (the
// write-through zeros already overwrite cached copies; invalidation
// drops them entirely, belt and braces).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blockdev/block_device.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::blockdev {

/// Aggregate cache accounting (relaxed atomics: safe to read while IO is
/// in flight, unlike DeviceStats).
struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  [[nodiscard]] double HitRatio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }
};

class BlockCacheDevice final : public BlockDevice {
 public:
  /// `inner` is borrowed and must outlive the cache. `capacity_blocks`
  /// is split evenly over `shard_count` shards (each shard keeps at
  /// least one block).
  BlockCacheDevice(BlockDevice* inner, std::uint64_t capacity_blocks,
                   std::size_t shard_count = 8);

  [[nodiscard]] std::uint32_t block_size() const override {
    return inner_->block_size();
  }
  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_->block_count();
  }

  Status ReadBlock(BlockIndex index, Bytes& out) override;
  Status WriteBlock(BlockIndex index, ByteSpan data) override;
  Status Flush() override { return inner_->Flush(); }
  void InvalidateCached(BlockIndex index) override;
  /// Partitions into hits and misses, forwards the misses as ONE inner
  /// batch (keeping the amortised device cost), then fills under the
  /// same epoch protocol as ReadBlock.
  Status ReadBatch(const std::vector<BlockIndex>& indexes,
                   std::vector<Bytes>& out) override;
  /// Write-through as one inner batch, then updates cached copies.
  Status WriteBatch(const std::vector<BatchWrite>& writes) override;

  /// True device traffic: the decorator adds none of its own, so IO
  /// reports (bench_dbfs_vs_fs, leak scans) keep meaning "what hit the
  /// medium", not "what hit the cache".
  [[nodiscard]] const DeviceStats& stats() const override {
    return inner_->stats();
  }

  [[nodiscard]] BlockCacheStats CacheStats() const;
  /// Blocks currently cached (sums shard sizes; racy but monotonic-safe).
  [[nodiscard]] std::uint64_t CachedBlockCount() const;
  [[nodiscard]] std::uint64_t capacity_blocks() const {
    return per_shard_capacity_ * shards_.size();
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] BlockDevice& inner() { return *inner_; }

 private:
  using LruList = std::list<std::pair<BlockIndex, Bytes>>;
  struct Shard {
    mutable metrics::OrderedMutex mu{metrics::LockRank::kBlockCache,
                                     "blockdev.cache"};
    LruList lru;  ///< front = most recently used
    std::unordered_map<BlockIndex, LruList::iterator> map;
    /// Bumped by every write/invalidation in the shard; a miss-fill that
    /// saw a different epoch before its device read is discarded.
    std::uint64_t epoch = 0;
  };

  [[nodiscard]] Shard& ShardFor(BlockIndex index) const {
    return shards_[index % shards_.size()];
  }
  /// Insert under the shard lock, evicting LRU entries over capacity.
  void InsertLocked(Shard& shard, BlockIndex index, Bytes data);

  BlockDevice* inner_;  // borrowed
  std::uint64_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace rgpdos::blockdev
