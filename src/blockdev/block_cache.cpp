#include "blockdev/block_cache.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"

namespace rgpdos::blockdev {

BlockCacheDevice::BlockCacheDevice(BlockDevice* inner,
                                   std::uint64_t capacity_blocks,
                                   std::size_t shard_count)
    : inner_(inner),
      per_shard_capacity_(std::max<std::uint64_t>(
          1, capacity_blocks / std::max<std::size_t>(1, shard_count))),
      shards_(std::max<std::size_t>(1, shard_count)) {}

void BlockCacheDevice::InsertLocked(Shard& shard, BlockIndex index,
                                    Bytes data) {
  shard.lru.emplace_front(index, std::move(data));
  shard.map[index] = shard.lru.begin();
  while (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    RGPD_METRIC_COUNT("cache.block.evict");
  }
}

Status BlockCacheDevice::ReadBlock(BlockIndex index, Bytes& out) {
  Shard& shard = ShardFor(index);
  std::uint64_t epoch_at_miss = 0;
  {
    std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
    const auto it = shard.map.find(index);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      out = it->second->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      RGPD_METRIC_COUNT("cache.block.hit");
      return Status::Ok();
    }
    epoch_at_miss = shard.epoch;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  RGPD_METRIC_COUNT("cache.block.miss");
  RGPD_RETURN_IF_ERROR(inner_->ReadBlock(index, out));
  std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
  // A write or invalidation landed in this shard while the lock was
  // dropped: `out` may predate it, so the fill is skipped (the data
  // returned to the caller is whatever the inner device served, which
  // is exactly what an uncached read would have returned).
  if (shard.epoch == epoch_at_miss && shard.map.count(index) == 0) {
    InsertLocked(shard, index, out);
  }
  return Status::Ok();
}

Status BlockCacheDevice::WriteBlock(BlockIndex index, ByteSpan data) {
  // Write-through: the device sees the bytes before the cache does, so a
  // crash (or a concurrent reader racing the shard lock) can never
  // observe a cached block the medium does not hold.
  RGPD_RETURN_IF_ERROR(inner_->WriteBlock(index, data));
  Shard& shard = ShardFor(index);
  std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
  ++shard.epoch;
  const auto it = shard.map.find(index);
  if (it != shard.map.end()) {
    it->second->second.assign(data.begin(), data.end());
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  }
  return Status::Ok();
}

Status BlockCacheDevice::ReadBatch(const std::vector<BlockIndex>& indexes,
                                   std::vector<Bytes>& out) {
  out.resize(indexes.size());
  // Pass 1: serve hits, collect misses (position + miss-epoch per entry).
  struct Miss {
    std::size_t position;
    std::uint64_t epoch_at_miss;
  };
  std::vector<Miss> misses;
  std::vector<BlockIndex> miss_blocks;
  for (std::size_t i = 0; i < indexes.size(); ++i) {
    Shard& shard = ShardFor(indexes[i]);
    std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
    const auto it = shard.map.find(indexes[i]);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      out[i] = it->second->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      RGPD_METRIC_COUNT("cache.block.hit");
    } else {
      misses.push_back({i, shard.epoch});
      miss_blocks.push_back(indexes[i]);
    }
  }
  if (miss_blocks.empty()) return Status::Ok();
  misses_.fetch_add(miss_blocks.size(), std::memory_order_relaxed);
  RGPD_METRIC_COUNT_N("cache.block.miss", miss_blocks.size());

  // Pass 2: one amortised inner submission for every miss, no shard lock
  // held (same rank discipline as the single-block path).
  std::vector<Bytes> miss_data;
  RGPD_RETURN_IF_ERROR(inner_->ReadBatch(miss_blocks, miss_data));

  // Pass 3: epoch-guarded fills, exactly as a single-block miss would do.
  for (std::size_t m = 0; m < miss_blocks.size(); ++m) {
    out[misses[m].position] = miss_data[m];
    Shard& shard = ShardFor(miss_blocks[m]);
    std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
    if (shard.epoch == misses[m].epoch_at_miss &&
        shard.map.count(miss_blocks[m]) == 0) {
      InsertLocked(shard, miss_blocks[m], miss_data[m]);
    }
  }
  return Status::Ok();
}

Status BlockCacheDevice::WriteBatch(const std::vector<BatchWrite>& writes) {
  // Write-through first, as one inner submission.
  RGPD_RETURN_IF_ERROR(inner_->WriteBatch(writes));
  for (const BatchWrite& w : writes) {
    Shard& shard = ShardFor(w.index);
    std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
    ++shard.epoch;
    const auto it = shard.map.find(w.index);
    if (it != shard.map.end()) {
      it->second->second.assign(w.data.begin(), w.data.end());
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
  }
  return Status::Ok();
}

void BlockCacheDevice::InvalidateCached(BlockIndex index) {
  {
    Shard& shard = ShardFor(index);
    std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
    ++shard.epoch;
    const auto it = shard.map.find(index);
    if (it != shard.map.end()) {
      shard.lru.erase(it->second);
      shard.map.erase(it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      RGPD_METRIC_COUNT("cache.block.invalidate");
    }
  }
  inner_->InvalidateCached(index);
}

BlockCacheStats BlockCacheDevice::CacheStats() const {
  BlockCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  return stats;
}

std::uint64_t BlockCacheDevice::CachedBlockCount() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace rgpdos::blockdev
