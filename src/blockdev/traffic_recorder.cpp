#include "blockdev/traffic_recorder.hpp"

namespace rgpdos::blockdev {

Status TrafficRecorder::WriteBlock(BlockIndex index, ByteSpan data) {
  history_.push_back(WriteRecord{index, Bytes(data.begin(), data.end())});
  history_bytes_ += data.size();
  return inner_->WriteBlock(index, data);
}

std::uint64_t TrafficRecorder::CountHistoricalWritesContaining(
    ByteSpan needle) const {
  std::uint64_t hits = 0;
  for (const WriteRecord& record : history_) {
    if (ContainsSubsequence(record.data, needle)) ++hits;
  }
  return hits;
}

void TrafficRecorder::ClearHistory() {
  history_.clear();
  history_bytes_ = 0;
}

}  // namespace rgpdos::blockdev
