#include "blockdev/file_block_device.hpp"

#include <unistd.h>

#include <cstdio>
#include <limits>

namespace rgpdos::blockdev {

namespace {

// stdio seeks take off_t via fseeko; a plain fseek(long) overflows for
// images >= 2 GiB on LP32/Windows ABIs. Centralise the off_t conversion
// (with an explicit range check) so every caller is 64-bit clean.
Status SeekTo(std::FILE* file, std::uint64_t offset) {
  if (offset >
      static_cast<std::uint64_t>(std::numeric_limits<off_t>::max())) {
    return OutOfRange("file offset exceeds off_t range");
  }
  if (::fseeko(file, static_cast<off_t>(offset), SEEK_SET) != 0) {
    return IoError("seek failed");
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, std::uint32_t block_size,
    std::uint64_t block_count) {
  if (block_size == 0 || block_count == 0) {
    return InvalidArgument("device geometry must be non-zero");
  }
  // index * block_size must stay in uint64 for every valid index.
  if (block_count > std::numeric_limits<std::uint64_t>::max() / block_size) {
    return OutOfRange("device capacity overflows 64 bits");
  }
  // Open existing or create; "r+b" first to preserve contents.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) {
    return IoError("cannot open backing file: " + path);
  }
  // Ensure the file spans the full device by writing the last byte.
  const std::uint64_t total = std::uint64_t(block_size) * block_count;
  if (Status s = SeekTo(file, total - 1); !s.ok()) {
    std::fclose(file);
    return IoError("cannot size backing file: " + path);
  }
  if (std::fgetc(file) == EOF) {
    if (Status s = SeekTo(file, total - 1); !s.ok()) {
      std::fclose(file);
      return IoError("cannot size backing file: " + path);
    }
    if (std::fputc(0, file) == EOF || std::fflush(file) != 0) {
      std::fclose(file);
      return IoError("cannot size backing file: " + path);
    }
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(file, block_size, block_count));
}

FileBlockDevice::~FileBlockDevice() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileBlockDevice::ReadBlock(BlockIndex index, Bytes& out) {
  if (index >= block_count_) return OutOfRange("read past end of device");
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  out.resize(block_size_);
  RGPD_RETURN_IF_ERROR(SeekTo(file_, index * std::uint64_t(block_size_)));
  const std::size_t got = std::fread(out.data(), 1, block_size_, file_);
  if (got != block_size_) {
    // Sparse tail of a fresh file reads short: zero-fill is the device's
    // defined fresh-medium content.
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(got), out.end(), 0);
  }
  ++stats_.reads;
  stats_.bytes_read += block_size_;
  return Status::Ok();
}

Status FileBlockDevice::WriteBlock(BlockIndex index, ByteSpan data) {
  if (index >= block_count_) return OutOfRange("write past end of device");
  if (data.size() != block_size_) {
    return InvalidArgument("block write must be exactly block_size bytes");
  }
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  RGPD_RETURN_IF_ERROR(SeekTo(file_, index * std::uint64_t(block_size_)));
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return IoError("short write to backing file");
  }
  ++stats_.writes;
  stats_.bytes_written += block_size_;
  return Status::Ok();
}

Status FileBlockDevice::Flush() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  // fflush alone only reaches the libc buffer — a "committed" journal
  // transaction would still die with the host. The durability barrier is
  // only real once fsync pushes the page cache to stable storage.
  if (std::fflush(file_) != 0) return IoError("fflush failed");
  if (::fsync(::fileno(file_)) != 0) return IoError("fsync failed");
  ++stats_.flushes;
  return Status::Ok();
}

}  // namespace rgpdos::blockdev
