#include "blockdev/file_block_device.hpp"

namespace rgpdos::blockdev {

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, std::uint32_t block_size,
    std::uint64_t block_count) {
  // Open existing or create; "r+b" first to preserve contents.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) {
    return IoError("cannot open backing file: " + path);
  }
  // Ensure the file spans the full device by writing the last byte.
  const std::uint64_t total = std::uint64_t(block_size) * block_count;
  if (std::fseek(file, static_cast<long>(total - 1), SEEK_SET) != 0) {
    std::fclose(file);
    return IoError("cannot size backing file: " + path);
  }
  if (std::fgetc(file) == EOF) {
    std::fseek(file, static_cast<long>(total - 1), SEEK_SET);
    std::fputc(0, file);
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(file, block_size, block_count));
}

FileBlockDevice::~FileBlockDevice() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileBlockDevice::ReadBlock(BlockIndex index, Bytes& out) {
  if (index >= block_count_) return OutOfRange("read past end of device");
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  out.resize(block_size_);
  if (std::fseek(file_, static_cast<long>(index * block_size_), SEEK_SET) !=
      0) {
    return IoError("seek failed");
  }
  const std::size_t got = std::fread(out.data(), 1, block_size_, file_);
  if (got != block_size_) {
    // Sparse tail of a fresh file reads short: zero-fill is the device's
    // defined fresh-medium content.
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(got), out.end(), 0);
  }
  ++stats_.reads;
  stats_.bytes_read += block_size_;
  return Status::Ok();
}

Status FileBlockDevice::WriteBlock(BlockIndex index, ByteSpan data) {
  if (index >= block_count_) return OutOfRange("write past end of device");
  if (data.size() != block_size_) {
    return InvalidArgument("block write must be exactly block_size bytes");
  }
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (std::fseek(file_, static_cast<long>(index * block_size_), SEEK_SET) !=
      0) {
    return IoError("seek failed");
  }
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return IoError("short write to backing file");
  }
  ++stats_.writes;
  stats_.bytes_written += block_size_;
  return Status::Ok();
}

Status FileBlockDevice::Flush() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (std::fflush(file_) != 0) return IoError("fflush failed");
  ++stats_.flushes;
  return Status::Ok();
}

}  // namespace rgpdos::blockdev
