// AsyncBlockDevice — an io_uring-style submission/completion ring over
// any BlockDevice.
//
// Callers enqueue submissions (ordered lists of write and flush-barrier
// ops) into a bounded submission ring; a per-device completion-reaper
// thread drains the ring FIFO, groups consecutive writes of a submission
// into ONE inner WriteBatch (so the latency model amortises them across
// the device queue), executes flush barriers, and publishes completions
// that Wait() reaps. Submit blocks while the ring is full — that is the
// backpressure bound, not an error.
//
// Flush coalescing: the device tracks whether any write reached the
// inner device since the last sync. A flush barrier arriving with
// nothing to persist is elided — adjacent barriers merge into one
// device sync (blockdev.async.coalesced_flushes counts the saved ones).
// Eliding an empty barrier is always safe, including under the fault
// injector's volatile write-back: a sync with no new writes drains
// nothing.
//
// Ordering & the synchronous BlockDevice surface: the decorator also IS
// a BlockDevice, so un-ported callers keep working. Synchronous writes,
// flushes and batches are funnelled through the ring as
// submit-and-wait submissions (one ring handoff per batch, not per
// block); reads first wait for the ring to drain and then hit the inner
// device directly from the calling thread — a read can therefore never
// overtake a queued write. The ring mutex is a leaf: it is never held
// across inner-device IO (same discipline as the DedExecutor's
// scheduling lock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "blockdev/block_device.hpp"

namespace rgpdos::blockdev {

/// Aggregate ring accounting (relaxed atomics, safe to read live).
struct AsyncDeviceStats {
  std::uint64_t ops_submitted = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t submissions = 0;
  std::uint64_t coalesced_flushes = 0;
};

class AsyncBlockDevice final : public BlockDevice {
 public:
  /// One ring operation: a block write (owning its payload, so
  /// fire-and-forget submissions outlive the caller's buffers) or a
  /// flush barrier ordered against the writes around it.
  struct Op {
    enum class Kind : std::uint8_t { kWrite, kFlush };
    Kind kind = Kind::kWrite;
    BlockIndex block = 0;
    Bytes data;  ///< kWrite payload; must be exactly block_size bytes

    static Op Write(BlockIndex block, Bytes data) {
      return Op{Kind::kWrite, block, std::move(data)};
    }
    static Op FlushBarrier() { return Op{Kind::kFlush, 0, {}}; }
  };

  using Ticket = std::uint64_t;

  /// `inner` is borrowed and must outlive this device. `ring_depth`
  /// bounds queued submissions (>= 1); Submit blocks when full.
  AsyncBlockDevice(BlockDevice* inner, std::size_t ring_depth);
  ~AsyncBlockDevice() override;
  AsyncBlockDevice(const AsyncBlockDevice&) = delete;
  AsyncBlockDevice& operator=(const AsyncBlockDevice&) = delete;

  // ---- Ring API -------------------------------------------------------
  /// Enqueue one submission; returns immediately once ring space is
  /// available. Ops execute in order relative to every other submission.
  Ticket Submit(std::vector<Op> ops);
  /// Block until `ticket`'s submission completed; returns its status.
  Status Wait(Ticket ticket);
  /// Submit + Wait, without copying payloads (spans stay valid because
  /// the caller blocks until completion).
  Status SubmitAndWait(const std::vector<BatchWrite>& writes,
                       bool flush_after);

  // ---- BlockDevice surface -------------------------------------------
  [[nodiscard]] std::uint32_t block_size() const override {
    return inner_->block_size();
  }
  [[nodiscard]] std::uint64_t block_count() const override {
    return inner_->block_count();
  }
  Status ReadBlock(BlockIndex index, Bytes& out) override;
  Status WriteBlock(BlockIndex index, ByteSpan data) override;
  Status Flush() override;
  Status ReadBatch(const std::vector<BlockIndex>& indexes,
                   std::vector<Bytes>& out) override;
  Status WriteBatch(const std::vector<BatchWrite>& writes) override;
  void InvalidateCached(BlockIndex index) override;
  [[nodiscard]] const DeviceStats& stats() const override {
    return inner_->stats();
  }

  [[nodiscard]] AsyncDeviceStats async_stats() const;
  [[nodiscard]] std::size_t ring_depth() const { return ring_depth_; }
  [[nodiscard]] BlockDevice& inner() { return *inner_; }

 private:
  struct Submission {
    Ticket ticket = 0;
    std::vector<Op> owned_ops;                ///< Submit() path
    const std::vector<BatchWrite>* borrowed;  ///< SubmitAndWait() path
    bool flush_after = false;
    Status status;
    bool done = false;
  };

  void ReaperLoop();
  /// Execute one submission against the inner device (no ring lock held).
  Status Execute(Submission& submission);
  /// Wait until every queued submission completed (ring empty, reaper
  /// idle). Called with `lock` held on mu_.
  void DrainLocked(std::unique_lock<std::mutex>& lock);

  BlockDevice* inner_;  // borrowed
  const std::size_t ring_depth_;

  std::mutex mu_;  // leaf: guards the ring, never held across inner IO
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Submission>> ring_;
  /// Completed fire-and-forget submissions whose status was not reaped.
  std::vector<std::shared_ptr<Submission>> completed_;
  std::shared_ptr<Submission> in_flight_;
  Ticket next_ticket_ = 1;
  bool stop_ = false;

  /// True while at least one write reached the inner device since the
  /// last inner Flush — a barrier finding this false is elided.
  bool dirty_since_flush_ = true;

  std::atomic<std::uint64_t> ops_submitted_{0};
  std::atomic<std::uint64_t> ops_completed_{0};
  std::atomic<std::uint64_t> submissions_{0};
  std::atomic<std::uint64_t> coalesced_flushes_{0};

  std::thread reaper_;
};

}  // namespace rgpdos::blockdev
