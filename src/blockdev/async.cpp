#include "blockdev/async.hpp"

#include <algorithm>
#include <unordered_map>

#include "metrics/metrics.hpp"

namespace rgpdos::blockdev {

AsyncBlockDevice::AsyncBlockDevice(BlockDevice* inner, std::size_t ring_depth)
    : inner_(inner),
      ring_depth_(std::max<std::size_t>(1, ring_depth)),
      reaper_([this] { ReaperLoop(); }) {}

AsyncBlockDevice::~AsyncBlockDevice() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  reaper_.join();
}

AsyncBlockDevice::Ticket AsyncBlockDevice::Submit(std::vector<Op> ops) {
  auto submission = std::make_shared<Submission>();
  submission->owned_ops = std::move(ops);
  submission->borrowed = nullptr;
  const std::size_t op_count = submission->owned_ops.size();
  Ticket ticket = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return ring_.size() < ring_depth_ || stop_; });
    ticket = next_ticket_++;
    submission->ticket = ticket;
    ring_.push_back(submission);
    completed_.push_back(submission);  // reapable via Wait until reaped
  }
  ops_submitted_.fetch_add(op_count, std::memory_order_relaxed);
  submissions_.fetch_add(1, std::memory_order_relaxed);
  RGPD_METRIC_COUNT_N("blockdev.async.submitted", op_count);
  cv_.notify_all();
  return ticket;
}

Status AsyncBlockDevice::Wait(Ticket ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto find = [&]() -> std::shared_ptr<Submission> {
    for (const auto& s : completed_) {
      if (s->ticket == ticket) return s;
    }
    return nullptr;
  };
  std::shared_ptr<Submission> submission = find();
  if (submission == nullptr) {
    return InvalidArgument("unknown or already-reaped async ticket");
  }
  cv_.wait(lock, [&] { return submission->done; });
  completed_.erase(
      std::find(completed_.begin(), completed_.end(), submission));
  return submission->status;
}

Status AsyncBlockDevice::SubmitAndWait(const std::vector<BatchWrite>& writes,
                                       bool flush_after) {
  auto submission = std::make_shared<Submission>();
  submission->borrowed = &writes;
  submission->flush_after = flush_after;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return ring_.size() < ring_depth_ || stop_; });
    submission->ticket = next_ticket_++;
    ring_.push_back(submission);
  }
  const std::size_t op_count = writes.size() + (flush_after ? 1 : 0);
  ops_submitted_.fetch_add(op_count, std::memory_order_relaxed);
  submissions_.fetch_add(1, std::memory_order_relaxed);
  RGPD_METRIC_COUNT_N("blockdev.async.submitted", op_count);
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return submission->done; });
  return submission->status;
}

Status AsyncBlockDevice::ReadBlock(BlockIndex index, Bytes& out) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    DrainLocked(lock);
  }
  return inner_->ReadBlock(index, out);
}

Status AsyncBlockDevice::WriteBlock(BlockIndex index, ByteSpan data) {
  const std::vector<BatchWrite> one{{index, data}};
  return SubmitAndWait(one, /*flush_after=*/false);
}

Status AsyncBlockDevice::Flush() {
  static const std::vector<BatchWrite> kNone;
  return SubmitAndWait(kNone, /*flush_after=*/true);
}

Status AsyncBlockDevice::ReadBatch(const std::vector<BlockIndex>& indexes,
                                   std::vector<Bytes>& out) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    DrainLocked(lock);
  }
  return inner_->ReadBatch(indexes, out);
}

Status AsyncBlockDevice::WriteBatch(const std::vector<BatchWrite>& writes) {
  return SubmitAndWait(writes, /*flush_after=*/false);
}

void AsyncBlockDevice::InvalidateCached(BlockIndex index) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    DrainLocked(lock);
  }
  inner_->InvalidateCached(index);
}

AsyncDeviceStats AsyncBlockDevice::async_stats() const {
  AsyncDeviceStats stats;
  stats.ops_submitted = ops_submitted_.load(std::memory_order_relaxed);
  stats.ops_completed = ops_completed_.load(std::memory_order_relaxed);
  stats.submissions = submissions_.load(std::memory_order_relaxed);
  stats.coalesced_flushes =
      coalesced_flushes_.load(std::memory_order_relaxed);
  return stats;
}

void AsyncBlockDevice::DrainLocked(std::unique_lock<std::mutex>& lock) {
  cv_.wait(lock, [this] { return ring_.empty() && in_flight_ == nullptr; });
}

void AsyncBlockDevice::ReaperLoop() {
  for (;;) {
    std::shared_ptr<Submission> submission;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !ring_.empty() || stop_; });
      if (ring_.empty() && stop_) return;
      submission = ring_.front();
      ring_.pop_front();
      in_flight_ = submission;
    }
    // Inner IO runs with NO ring lock held; readers stay parked in
    // DrainLocked because in_flight_ is set.
    const Status status = Execute(*submission);
    std::size_t op_count = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      submission->status = status;
      submission->done = true;
      op_count = submission->borrowed != nullptr
                     ? submission->borrowed->size() +
                           (submission->flush_after ? 1 : 0)
                     : submission->owned_ops.size();
      in_flight_ = nullptr;
    }
    ops_completed_.fetch_add(op_count, std::memory_order_relaxed);
    RGPD_METRIC_COUNT_N("blockdev.async.completed", op_count);
    cv_.notify_all();
  }
}

Status AsyncBlockDevice::Execute(Submission& submission) {
  // Barrier semantics only need a real device sync when something was
  // written since the last one; an empty barrier is merged away.
  const auto barrier = [&]() -> Status {
    if (!dirty_since_flush_) {
      coalesced_flushes_.fetch_add(1, std::memory_order_relaxed);
      RGPD_METRIC_COUNT("blockdev.async.coalesced_flushes");
      return Status::Ok();
    }
    RGPD_RETURN_IF_ERROR(inner_->Flush());
    dirty_since_flush_ = false;
    return Status::Ok();
  };

  if (submission.borrowed != nullptr) {
    if (!submission.borrowed->empty()) {
      dirty_since_flush_ = true;
      RGPD_RETURN_IF_ERROR(inner_->WriteBatch(*submission.borrowed));
    }
    if (submission.flush_after) RGPD_RETURN_IF_ERROR(barrier());
    return Status::Ok();
  }

  // Owned-op path: group consecutive writes into one inner batch, honour
  // flush barriers in order.
  std::vector<BatchWrite> pending;
  const auto drain_writes = [&]() -> Status {
    if (pending.empty()) return Status::Ok();
    dirty_since_flush_ = true;
    const Status s = inner_->WriteBatch(pending);
    pending.clear();
    return s;
  };
  for (const Op& op : submission.owned_ops) {
    if (op.kind == Op::Kind::kWrite) {
      pending.push_back({op.block, ByteSpan(op.data.data(), op.data.size())});
    } else {
      RGPD_RETURN_IF_ERROR(drain_writes());
      RGPD_RETURN_IF_ERROR(barrier());
    }
  }
  return drain_writes();
}

}  // namespace rgpdos::blockdev
