#include "membrane/membrane.hpp"

namespace rgpdos::membrane {

std::string_view OriginName(Origin origin) {
  switch (origin) {
    case Origin::kSubject: return "subject";
    case Origin::kSysadmin: return "sysadmin";
    case Origin::kThirdParty: return "third_party";
    case Origin::kDerived: return "derived";
  }
  return "?";
}

std::string_view SensitivityName(Sensitivity s) {
  switch (s) {
    case Sensitivity::kLow: return "low";
    case Sensitivity::kMedium: return "medium";
    case Sensitivity::kHigh: return "high";
  }
  return "?";
}

Result<Consent> Membrane::Evaluate(std::string_view purpose,
                                   TimeMicros now,
                                   bool automated_decision) const {
  if (restricted) {
    return Restricted("processing of subject " +
                      std::to_string(subject_id) + "'s PD is restricted" +
                      (restriction_reason.empty()
                           ? std::string()
                           : " (" + restriction_reason + ")"));
  }
  if (ExpiredAt(now)) {
    return Expired("PD of subject " + std::to_string(subject_id) +
                   " exceeded its time to live");
  }
  if (ObjectedTo(purpose)) {
    return Objected("subject " + std::to_string(subject_id) +
                    " objected to purpose '" + std::string(purpose) +
                    "' (Art. 21)");
  }
  if (automated_decision && no_automated_decision) {
    return Objected("subject " + std::to_string(subject_id) +
                    " opted out of automated decisions (Art. 22); purpose '" +
                    std::string(purpose) + "' is declared automated");
  }
  const auto it = consents.find(std::string(purpose));
  if (it == consents.end() || it->second.kind == ConsentKind::kNone) {
    return ConsentDenied("purpose '" + std::string(purpose) +
                         "' not consented by subject " +
                         std::to_string(subject_id));
  }
  return it->second;
}

void Membrane::GrantConsent(const std::string& purpose, Consent consent) {
  consents[purpose] = std::move(consent);
  ++version;
}

void Membrane::RevokeConsent(const std::string& purpose) {
  consents[purpose] = Consent::None();
  ++version;
}

void Membrane::SetTtl(TimeMicros new_ttl) {
  ttl = new_ttl;
  ++version;
}

void Membrane::Restrict(std::string reason) {
  restricted = true;
  restriction_reason = std::move(reason);
  ++version;
}

void Membrane::LiftRestriction() {
  restricted = false;
  restriction_reason.clear();
  ++version;
}

void Membrane::Object(const std::string& purpose) {
  objections.insert(purpose);
  ++version;
}

void Membrane::WithdrawObjection(const std::string& purpose) {
  objections.erase(purpose);
  ++version;
}

void Membrane::SetNoAutomatedDecision(bool opt_out) {
  no_automated_decision = opt_out;
  ++version;
}

Bytes Membrane::Serialize() const {
  ByteWriter w;
  w.PutU64(subject_id);
  w.PutString(type_name);
  w.PutU8(static_cast<std::uint8_t>(origin));
  w.PutU8(static_cast<std::uint8_t>(sensitivity));
  w.PutI64(created_at);
  w.PutI64(ttl);
  w.PutVarint(consents.size());
  for (const auto& [purpose, consent] : consents) {
    w.PutString(purpose);
    w.PutU8(static_cast<std::uint8_t>(consent.kind));
    w.PutString(consent.view);
  }
  w.PutVarint(collection.size());
  for (const CollectionInterface& c : collection) {
    w.PutString(c.method);
    w.PutString(c.target);
  }
  w.PutU64(copy_group);
  w.PutBool(restricted);
  w.PutString(restriction_reason);
  w.PutU64(version);
  // Art. 21/22 flags ride at the tail so pre-objection images (which end
  // at `version`) still decode; see the remaining() guard in Deserialize.
  w.PutVarint(objections.size());
  for (const std::string& purpose : objections) w.PutString(purpose);
  w.PutBool(no_automated_decision);
  return w.Take();
}

Result<Membrane> Membrane::Deserialize(ByteSpan bytes) {
  ByteReader r(bytes);
  Membrane m;
  RGPD_ASSIGN_OR_RETURN(m.subject_id, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(m.type_name, r.GetString());
  RGPD_ASSIGN_OR_RETURN(std::uint8_t origin, r.GetU8());
  if (origin > static_cast<std::uint8_t>(Origin::kDerived)) {
    return Corruption("membrane has unknown origin");
  }
  m.origin = static_cast<Origin>(origin);
  RGPD_ASSIGN_OR_RETURN(std::uint8_t sensitivity, r.GetU8());
  if (sensitivity > static_cast<std::uint8_t>(Sensitivity::kHigh)) {
    return Corruption("membrane has unknown sensitivity");
  }
  m.sensitivity = static_cast<Sensitivity>(sensitivity);
  RGPD_ASSIGN_OR_RETURN(m.created_at, r.GetI64());
  RGPD_ASSIGN_OR_RETURN(m.ttl, r.GetI64());
  RGPD_ASSIGN_OR_RETURN(std::uint64_t consent_count, r.GetVarint());
  for (std::uint64_t i = 0; i < consent_count; ++i) {
    RGPD_ASSIGN_OR_RETURN(std::string purpose, r.GetString());
    Consent consent;
    RGPD_ASSIGN_OR_RETURN(std::uint8_t kind, r.GetU8());
    if (kind > static_cast<std::uint8_t>(ConsentKind::kAll)) {
      return Corruption("membrane consent has unknown kind");
    }
    consent.kind = static_cast<ConsentKind>(kind);
    RGPD_ASSIGN_OR_RETURN(consent.view, r.GetString());
    m.consents.emplace(std::move(purpose), std::move(consent));
  }
  RGPD_ASSIGN_OR_RETURN(std::uint64_t collection_count, r.GetVarint());
  for (std::uint64_t i = 0; i < collection_count; ++i) {
    CollectionInterface c;
    RGPD_ASSIGN_OR_RETURN(c.method, r.GetString());
    RGPD_ASSIGN_OR_RETURN(c.target, r.GetString());
    m.collection.push_back(std::move(c));
  }
  RGPD_ASSIGN_OR_RETURN(m.copy_group, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(m.restricted, r.GetBool());
  RGPD_ASSIGN_OR_RETURN(m.restriction_reason, r.GetString());
  RGPD_ASSIGN_OR_RETURN(m.version, r.GetU64());
  // Membranes serialized before the Art. 21/22 fields end here; decode
  // them as "no objections, no opt-out" rather than rejecting the image.
  if (r.remaining() > 0) {
    RGPD_ASSIGN_OR_RETURN(std::uint64_t objection_count, r.GetVarint());
    for (std::uint64_t i = 0; i < objection_count; ++i) {
      RGPD_ASSIGN_OR_RETURN(std::string purpose, r.GetString());
      m.objections.insert(std::move(purpose));
    }
    RGPD_ASSIGN_OR_RETURN(m.no_automated_decision, r.GetBool());
  }
  return m;
}

bool operator==(const Membrane& a, const Membrane& b) {
  return a.subject_id == b.subject_id && a.type_name == b.type_name &&
         a.origin == b.origin && a.sensitivity == b.sensitivity &&
         a.created_at == b.created_at && a.ttl == b.ttl &&
         a.consents == b.consents && a.copy_group == b.copy_group &&
         a.restricted == b.restricted &&
         a.restriction_reason == b.restriction_reason &&
         a.objections == b.objections &&
         a.no_automated_decision == b.no_automated_decision &&
         a.version == b.version && a.collection == b.collection;
}

}  // namespace rgpdos::membrane
