// The PD membrane — "the first demonstration of the notion of active
// data" (paper §2). Every PD record stored in DBFS carries one; it holds
// the metadata the paper enumerates (origin, per-purpose consents, time
// to live, sensitivity, collection interface) and is consulted by the DED
// on every access (ded_filter step).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"

namespace rgpdos::membrane {

/// Where a piece of PD entered the system (traceability requirement of
/// the collection built-in).
enum class Origin : std::uint8_t {
  kSubject = 0,     ///< collected directly from the data subject
  kSysadmin,        ///< entered by the data operator
  kThirdParty,      ///< obtained from another data operator
  kDerived,         ///< produced by a processing inside the DED
};

std::string_view OriginName(Origin origin);

/// GDPR sensitivity level; "sensitive data … be stored separately from
/// less sensitive data" (paper §2) — DBFS uses this to segregate records.
enum class Sensitivity : std::uint8_t { kLow = 0, kMedium, kHigh };

std::string_view SensitivityName(Sensitivity s);

/// What a consent entry authorises a purpose to see.
enum class ConsentKind : std::uint8_t {
  kNone = 0,  ///< purpose may not touch this PD
  kView,      ///< purpose sees only the named view's fields
  kAll,       ///< purpose sees every field
};

struct Consent {
  ConsentKind kind = ConsentKind::kNone;
  std::string view;  ///< set iff kind == kView

  static Consent None() { return {ConsentKind::kNone, {}}; }
  static Consent All() { return {ConsentKind::kAll, {}}; }
  static Consent ForView(std::string view_name) {
    return {ConsentKind::kView, std::move(view_name)};
  }

  friend bool operator==(const Consent& a, const Consent& b) {
    return a.kind == b.kind && a.view == b.view;
  }
};

/// How PD of a type can be (re-)collected when absent from DBFS.
struct CollectionInterface {
  std::string method;  ///< e.g. "web_form", "third_party"
  std::string target;  ///< e.g. "user_form.html", "fetch_data.py"

  friend bool operator==(const CollectionInterface& a,
                         const CollectionInterface& b) {
    return a.method == b.method && a.target == b.target;
  }
};

/// The membrane proper.
struct Membrane {
  std::uint64_t subject_id = 0;
  std::string type_name;
  Origin origin = Origin::kSubject;
  Sensitivity sensitivity = Sensitivity::kLow;
  TimeMicros created_at = 0;
  /// Time to live; 0 means "no expiry". `created_at + ttl` is the moment
  /// the PD stops being accessible (right to be forgotten by time).
  TimeMicros ttl = 0;
  /// Per-purpose consents. Purposes absent from the map are denied.
  std::map<std::string, Consent> consents;
  std::vector<CollectionInterface> collection;
  /// All copies of the same PD share a copy group; consent changes are
  /// propagated group-wide so membranes stay consistent (copy built-in).
  std::uint64_t copy_group = 0;
  /// GDPR Art. 18 restriction of processing: while set, the PD is kept
  /// in storage but no purpose may process it (the subject contests
  /// accuracy, or objects, or wants the data preserved for a claim).
  bool restricted = false;
  std::string restriction_reason;
  /// GDPR Art. 21 objections: purposes the subject has objected to.
  /// Unlike consent withdrawal, an objection survives a later re-grant —
  /// the purpose stays blocked until the objection is withdrawn.
  std::set<std::string> objections;
  /// GDPR Art. 22: when set, the subject has opted out of decisions
  /// based solely on automated processing; purposes declared
  /// `automated: true` are denied regardless of consent.
  bool no_automated_decision = false;
  /// Monotonic version, bumped on every membrane mutation.
  std::uint64_t version = 0;

  // ---- evaluation ----------------------------------------------------------

  /// Overflow-safe: `created_at + ttl` can exceed INT64_MAX for large
  /// TTLs (signed overflow is UB, and a wrapped-negative sum would make
  /// fresh PD report expired), so compare the elapsed age instead. The
  /// exact boundary `now == created_at + ttl` counts as expired.
  [[nodiscard]] bool ExpiredAt(TimeMicros now) const {
    return ttl != 0 && now - created_at >= ttl;
  }

  /// Has the subject objected (Art. 21) to this purpose?
  [[nodiscard]] bool ObjectedTo(std::string_view purpose) const {
    return objections.find(std::string(purpose)) != objections.end();
  }

  /// The decision the DED's filter step needs: may `purpose` process this
  /// PD now, and through which scope? Status codes kExpired /
  /// kConsentDenied / kObjected communicate GDPR outcomes.
  /// `automated_decision` is the purpose's `automated:` declaration; when
  /// true and the membrane carries the Art. 22 opt-out, the purpose is
  /// denied with kObjected even if consented.
  [[nodiscard]] Result<Consent> Evaluate(std::string_view purpose,
                                         TimeMicros now,
                                         bool automated_decision = false) const;

  // ---- mutation (version-bumping) ------------------------------------------

  void GrantConsent(const std::string& purpose, Consent consent);
  /// Withdraw consent for one purpose (GDPR Art. 7(3)).
  void RevokeConsent(const std::string& purpose);
  void SetTtl(TimeMicros new_ttl);
  /// Art. 18: mark / unmark the PD as restricted.
  void Restrict(std::string reason);
  void LiftRestriction();
  /// Art. 21: object to / withdraw the objection against one purpose.
  void Object(const std::string& purpose);
  void WithdrawObjection(const std::string& purpose);
  /// Art. 22: opt out of (or back into) solely-automated decisions.
  void SetNoAutomatedDecision(bool opt_out);

  // ---- codec ---------------------------------------------------------------

  [[nodiscard]] Bytes Serialize() const;
  static Result<Membrane> Deserialize(ByteSpan bytes);

  friend bool operator==(const Membrane& a, const Membrane& b);
};

}  // namespace rgpdos::membrane
