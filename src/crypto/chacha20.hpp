// ChaCha20 stream cipher (RFC 8439), pinned by the RFC test vectors.
// This is the data cipher of the crypto-erasure envelope: each erased PD
// record is encrypted under a fresh 256-bit key that is then RSA-wrapped
// to the supervisory authority's public key.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace rgpdos::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// ChaCha20 keystream XOR: encryption and decryption are the same
/// operation. `counter` is the initial block counter (RFC 8439 §2.4).
Bytes ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t counter, ByteSpan input);

/// Raw ChaCha20 block function, exposed for the RFC §2.3.2 test vector.
std::array<std::uint8_t, 64> ChaCha20Block(const ChaChaKey& key,
                                           const ChaChaNonce& nonce,
                                           std::uint32_t counter);

}  // namespace rgpdos::crypto
