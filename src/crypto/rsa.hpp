// RSA with OAEP-style padding (MGF1/SHA-256), from scratch on BigUint.
//
// rgpdOS's right-to-be-forgotten (paper §4) assumes "each data operator
// owns a public encryption key given to them by the authorities who keep
// the private key". This module provides that keypair: the operator-side
// kernel holds only RsaPublicKey; RsaPrivateKey lives with the simulated
// supervisory authority.
#pragma once

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/bigint.hpp"
#include "crypto/secure_random.hpp"

namespace rgpdos::crypto {

struct RsaPublicKey {
  BigUint n;  ///< modulus
  BigUint e;  ///< public exponent (65537)

  /// Modulus size in whole bytes (ciphertext length).
  [[nodiscard]] std::size_t ModulusBytes() const {
    return (n.BitLength() + 7) / 8;
  }
  /// SHA-256 fingerprint of the public key, for audit records.
  [[nodiscard]] Bytes Fingerprint() const;
};

struct RsaPrivateKey {
  BigUint n;
  BigUint d;  ///< private exponent
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

/// Generate a keypair with a modulus of `modulus_bits` (two primes of
/// modulus_bits/2). 1024 is the test/bench default: big enough to exercise
/// every code path, small enough to generate in milliseconds; production
/// would use 3072+.
Result<RsaKeyPair> RsaGenerate(std::size_t modulus_bits, SecureRandom& rng);

/// OAEP-padded encryption. Message capacity = modulus_bytes - 66.
Result<Bytes> RsaEncrypt(const RsaPublicKey& key, ByteSpan message,
                         SecureRandom& rng);

/// OAEP-padded decryption; fails with Corruption on padding mismatch.
Result<Bytes> RsaDecrypt(const RsaPrivateKey& key, ByteSpan ciphertext);

/// MGF1 mask generation (exposed for tests).
Bytes Mgf1Sha256(ByteSpan seed, std::size_t length);

}  // namespace rgpdos::crypto
