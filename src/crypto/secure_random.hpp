// Random bytes for key material. Mixes OS entropy (std::random_device)
// into a xoshiro stream; deterministic mode is available for tests so
// envelopes and keypairs are reproducible.
//
// Thread-safety: Fill/NextBytes serialise on an internal leaf-rank lock
// (kCryptoRng), so one SecureRandom may feed concurrent erasure /
// envelope paths. rng() hands out the raw stream WITHOUT that lock —
// callers doing long multi-draw work (BigUint prime generation) must own
// the generator for the duration, which boot-time keypair generation
// does by construction.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::crypto {

class SecureRandom {
 public:
  /// Entropy-seeded generator (production paths).
  SecureRandom();
  /// Deterministic generator (tests / reproducible benches).
  explicit SecureRandom(std::uint64_t seed) : rng_(seed) {}

  /// Re-seed in place (the mutex makes SecureRandom immovable).
  /// Boot-time interface: not safe against concurrent Fill.
  void Reseed(std::uint64_t seed) { rng_ = Rng(seed); }
  void ReseedFromEntropy();

  void Fill(std::uint8_t* out, std::size_t n);
  Bytes NextBytes(std::size_t n);
  /// Access the underlying Rng (used by BigUint prime generation).
  /// Unsynchronised: single-owner use only.
  Rng& rng() { return rng_; }

 private:
  metrics::OrderedMutex mu_{metrics::LockRank::kCryptoRng, "crypto.rng"};
  Rng rng_;
};

}  // namespace rgpdos::crypto
