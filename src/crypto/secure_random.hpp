// Random bytes for key material. Mixes OS entropy (std::random_device)
// into a xoshiro stream; deterministic mode is available for tests so
// envelopes and keypairs are reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace rgpdos::crypto {

class SecureRandom {
 public:
  /// Entropy-seeded generator (production paths).
  SecureRandom();
  /// Deterministic generator (tests / reproducible benches).
  explicit SecureRandom(std::uint64_t seed) : rng_(seed) {}

  void Fill(std::uint8_t* out, std::size_t n);
  Bytes NextBytes(std::size_t n);
  /// Access the underlying Rng (used by BigUint prime generation).
  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace rgpdos::crypto
