// SHA-256 (FIPS 180-4), implemented from scratch and pinned by the NIST
// test vectors in tests/crypto/sha256_test.cpp. Used for key fingerprints,
// OAEP-lite padding, the processing-log hash chain, and HMAC.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace rgpdos::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(ByteSpan data);
  /// Finalize and return the digest. The object must be Reset() before reuse.
  Sha256Digest Finish();

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
};

/// One-shot digest.
Sha256Digest Sha256Hash(ByteSpan data);

/// Digest as a Bytes buffer (convenient for codecs).
Bytes Sha256Bytes(ByteSpan data);

}  // namespace rgpdos::crypto
