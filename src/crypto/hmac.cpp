#include "crypto/hmac.hpp"

namespace rgpdos::crypto {

Sha256Digest HmacSha256(ByteSpan key, ByteSpan message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Sha256Digest hashed = Sha256Hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteSpan(ipad.data(), ipad.size()));
  inner.Update(message);
  const Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(ByteSpan(opad.data(), opad.size()));
  outer.Update(ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

bool DigestEqual(const Sha256Digest& a, const Sha256Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace rgpdos::crypto
