#include "crypto/envelope.hpp"

#include "crypto/hmac.hpp"

namespace rgpdos::crypto {

Bytes Envelope::Serialize() const {
  ByteWriter w;
  w.PutBytes(wrapped_key);
  w.PutBytes(ciphertext);
  w.PutBytes(Bytes(tag.begin(), tag.end()));
  w.PutBytes(key_fingerprint);
  return w.Take();
}

Result<Envelope> Envelope::Deserialize(ByteSpan bytes) {
  ByteReader r(bytes);
  Envelope env;
  RGPD_ASSIGN_OR_RETURN(env.wrapped_key, r.GetBytes());
  RGPD_ASSIGN_OR_RETURN(env.ciphertext, r.GetBytes());
  RGPD_ASSIGN_OR_RETURN(Bytes tag, r.GetBytes());
  if (tag.size() != kSha256DigestSize) {
    return Corruption("envelope: bad tag length");
  }
  std::copy(tag.begin(), tag.end(), env.tag.begin());
  RGPD_ASSIGN_OR_RETURN(env.key_fingerprint, r.GetBytes());
  return env;
}

Result<Envelope> Seal(const RsaPublicKey& authority_key, ByteSpan plaintext,
                      SecureRandom& rng) {
  ChaChaKey data_key;
  rng.Fill(data_key.data(), data_key.size());
  ChaChaNonce nonce;
  rng.Fill(nonce.data(), nonce.size());

  Envelope env;
  env.ciphertext = ChaCha20Xor(data_key, nonce, 1, plaintext);
  env.tag = HmacSha256(ByteSpan(data_key.data(), data_key.size()),
                       env.ciphertext);

  Bytes key_material;
  key_material.reserve(data_key.size() + nonce.size());
  key_material.insert(key_material.end(), data_key.begin(), data_key.end());
  key_material.insert(key_material.end(), nonce.begin(), nonce.end());
  RGPD_ASSIGN_OR_RETURN(env.wrapped_key,
                        RsaEncrypt(authority_key, key_material, rng));
  env.key_fingerprint = authority_key.Fingerprint();

  // Destroy the ephemeral key material: after this return the operator's
  // only copy of the key is inside the RSA blob it cannot open.
  data_key.fill(0);
  key_material.assign(key_material.size(), 0);
  return env;
}

Result<Bytes> Open(const RsaPrivateKey& authority_key,
                   const Envelope& envelope) {
  RGPD_ASSIGN_OR_RETURN(Bytes key_material,
                        RsaDecrypt(authority_key, envelope.wrapped_key));
  if (key_material.size() != kChaChaKeySize + kChaChaNonceSize) {
    return Corruption("envelope: bad wrapped key material length");
  }
  ChaChaKey data_key;
  ChaChaNonce nonce;
  std::copy(key_material.begin(), key_material.begin() + kChaChaKeySize,
            data_key.begin());
  std::copy(key_material.begin() + kChaChaKeySize, key_material.end(),
            nonce.begin());

  const Sha256Digest expected = HmacSha256(
      ByteSpan(data_key.data(), data_key.size()), envelope.ciphertext);
  if (!DigestEqual(expected, envelope.tag)) {
    return Corruption("envelope: HMAC tag mismatch");
  }
  return ChaCha20Xor(data_key, nonce, 1, envelope.ciphertext);
}

}  // namespace rgpdos::crypto
