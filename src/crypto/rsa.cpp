#include "crypto/rsa.hpp"

#include "crypto/sha256.hpp"

namespace rgpdos::crypto {

namespace {
constexpr std::size_t kHashLen = kSha256DigestSize;

/// Label hash for an empty OAEP label: SHA-256("").
Sha256Digest EmptyLabelHash() { return Sha256Hash(ByteSpan{}); }
}  // namespace

Bytes RsaPublicKey::Fingerprint() const {
  ByteWriter w;
  w.PutBytes(n.ToBytes());
  w.PutBytes(e.ToBytes());
  return Sha256Bytes(w.buffer());
}

Bytes Mgf1Sha256(ByteSpan seed, std::size_t length) {
  Bytes out;
  out.reserve(length + kHashLen);
  std::uint32_t counter = 0;
  while (out.size() < length) {
    Sha256 h;
    h.Update(seed);
    const std::uint8_t ctr_be[4] = {
        static_cast<std::uint8_t>(counter >> 24),
        static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8),
        static_cast<std::uint8_t>(counter)};
    h.Update(ByteSpan(ctr_be, 4));
    const Sha256Digest block = h.Finish();
    out.insert(out.end(), block.begin(), block.end());
    ++counter;
  }
  out.resize(length);
  return out;
}

Result<RsaKeyPair> RsaGenerate(std::size_t modulus_bits, SecureRandom& rng) {
  if (modulus_bits < 256 || modulus_bits % 2 != 0) {
    return InvalidArgument("modulus_bits must be even and >= 256");
  }
  const BigUint e(65537);
  const BigUint one(1);
  for (;;) {
    const BigUint p = BigUint::RandomPrime(modulus_bits / 2, rng.rng());
    BigUint q = BigUint::RandomPrime(modulus_bits / 2, rng.rng());
    if (p == q) continue;
    const BigUint n = p.Mul(q);
    if (n.BitLength() != modulus_bits) continue;
    const BigUint phi = p.Sub(one).Mul(q.Sub(one));
    if (!(BigUint::Gcd(e, phi) == one)) continue;
    auto d = e.ModInverse(phi);
    if (!d.ok()) continue;
    RsaKeyPair pair;
    pair.public_key = RsaPublicKey{n, e};
    pair.private_key = RsaPrivateKey{n, std::move(d).value()};
    return pair;
  }
}

Result<Bytes> RsaEncrypt(const RsaPublicKey& key, ByteSpan message,
                         SecureRandom& rng) {
  const std::size_t k = key.ModulusBytes();
  if (k < 2 * kHashLen + 2) return InvalidArgument("modulus too small");
  const std::size_t max_message = k - 2 * kHashLen - 2;
  if (message.size() > max_message) {
    return InvalidArgument("message too long for RSA-OAEP block");
  }

  // EME-OAEP encoding (RFC 8017 §7.1.1).
  // DB = lHash || PS (zeros) || 0x01 || M
  Bytes db;
  db.reserve(k - kHashLen - 1);
  const Sha256Digest lhash = EmptyLabelHash();
  db.insert(db.end(), lhash.begin(), lhash.end());
  db.insert(db.end(), k - message.size() - 2 * kHashLen - 2, 0);
  db.push_back(0x01);
  db.insert(db.end(), message.begin(), message.end());

  const Bytes seed = rng.NextBytes(kHashLen);
  const Bytes db_mask = Mgf1Sha256(seed, db.size());
  Bytes masked_db = db;
  for (std::size_t i = 0; i < masked_db.size(); ++i) masked_db[i] ^= db_mask[i];
  const Bytes seed_mask = Mgf1Sha256(masked_db, kHashLen);
  Bytes masked_seed = seed;
  for (std::size_t i = 0; i < kHashLen; ++i) masked_seed[i] ^= seed_mask[i];

  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.insert(em.end(), masked_seed.begin(), masked_seed.end());
  em.insert(em.end(), masked_db.begin(), masked_db.end());

  const BigUint m = BigUint::FromBytes(em);
  const BigUint c = m.ModPow(key.e, key.n);
  return c.ToBytesPadded(k);
}

Result<Bytes> RsaDecrypt(const RsaPrivateKey& key, ByteSpan ciphertext) {
  const std::size_t k = (key.n.BitLength() + 7) / 8;
  if (ciphertext.size() != k) {
    return InvalidArgument("ciphertext length != modulus length");
  }
  const BigUint c = BigUint::FromBytes(ciphertext);
  if (c.Compare(key.n) >= 0) {
    return InvalidArgument("ciphertext out of range");
  }
  const BigUint m = c.ModPow(key.d, key.n);
  RGPD_ASSIGN_OR_RETURN(Bytes em, m.ToBytesPadded(k));

  if (em[0] != 0x00) return Corruption("OAEP: bad leading byte");
  ByteSpan masked_seed(em.data() + 1, kHashLen);
  ByteSpan masked_db(em.data() + 1 + kHashLen, k - kHashLen - 1);

  const Bytes seed_mask = Mgf1Sha256(masked_db, kHashLen);
  Bytes seed(masked_seed.begin(), masked_seed.end());
  for (std::size_t i = 0; i < kHashLen; ++i) seed[i] ^= seed_mask[i];
  const Bytes db_mask = Mgf1Sha256(seed, masked_db.size());
  Bytes db(masked_db.begin(), masked_db.end());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];

  const Sha256Digest lhash = EmptyLabelHash();
  for (std::size_t i = 0; i < kHashLen; ++i) {
    if (db[i] != lhash[i]) return Corruption("OAEP: label hash mismatch");
  }
  std::size_t i = kHashLen;
  while (i < db.size() && db[i] == 0x00) ++i;
  if (i == db.size() || db[i] != 0x01) {
    return Corruption("OAEP: missing 0x01 separator");
  }
  return Bytes(db.begin() + static_cast<std::ptrdiff_t>(i + 1), db.end());
}

}  // namespace rgpdos::crypto
