// Hybrid encryption envelope for the right to be forgotten (paper §4).
//
// Erasing a PD record does not necessarily destroy it: legal investigations
// may require recovery by the supervisory authority. rgpdOS therefore
// encrypts the record under a fresh ChaCha20 key, wraps that key to the
// authority's RSA public key, destroys the plaintext and the data key, and
// keeps only the envelope. The *operator* provably cannot read the data any
// more; the *authority* (private-key holder) can.
#pragma once

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace rgpdos::crypto {

/// A sealed record: everything the operator is allowed to keep.
struct Envelope {
  Bytes wrapped_key;      ///< RSA-OAEP(data key || nonce) to the authority
  Bytes ciphertext;       ///< ChaCha20(plaintext)
  Sha256Digest tag;       ///< HMAC-SHA256 over ciphertext, keyed by data key
  Bytes key_fingerprint;  ///< which authority key sealed this

  [[nodiscard]] Bytes Serialize() const;
  static Result<Envelope> Deserialize(ByteSpan bytes);
};

/// Seal `plaintext` to the authority's public key. The ephemeral data key
/// exists only inside this call.
Result<Envelope> Seal(const RsaPublicKey& authority_key, ByteSpan plaintext,
                      SecureRandom& rng);

/// Authority-side recovery. Verifies the HMAC tag before returning.
Result<Bytes> Open(const RsaPrivateKey& authority_key,
                   const Envelope& envelope);

}  // namespace rgpdos::crypto
