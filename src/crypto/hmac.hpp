// HMAC-SHA256 (RFC 2104). Authenticates crypto-erasure envelopes and the
// tamper-evident processing log.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace rgpdos::crypto {

/// One-shot HMAC-SHA256.
Sha256Digest HmacSha256(ByteSpan key, ByteSpan message);

/// Constant-time digest comparison (avoids a timing side channel on tag
/// verification; matters even in a simulation because benches time paths).
bool DigestEqual(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace rgpdos::crypto
