// Arbitrary-precision unsigned integers, from scratch, sized for RSA
// moduli up to a few thousand bits. Little-endian 32-bit limbs.
//
// Only the operations RSA needs are provided (comparison, ring arithmetic,
// division, modular exponentiation, gcd/inverse, Miller-Rabin); this is a
// substrate, not a general bignum library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace rgpdos::crypto {

class BigUint;

/// Quotient and remainder of BigUint::DivMod.
struct BigUintDivMod;

class BigUint {
 public:
  /// Zero.
  BigUint() = default;
  /// From a machine word.
  explicit BigUint(std::uint64_t value);

  /// Parse decimal digits ("123456..."). Fails on empty/non-digit input.
  static Result<BigUint> FromDecimal(std::string_view text);
  /// Big-endian byte import (leading zeros allowed).
  static BigUint FromBytes(ByteSpan bytes);
  /// Uniform random integer with exactly `bits` bits (MSB forced to 1),
  /// drawn from `rng`. bits must be >= 1.
  static BigUint RandomWithBits(std::size_t bits, Rng& rng);

  [[nodiscard]] bool IsZero() const { return limbs_.empty(); }
  [[nodiscard]] bool IsOdd() const {
    return !limbs_.empty() && (limbs_[0] & 1);
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t BitLength() const;
  [[nodiscard]] bool Bit(std::size_t index) const;

  /// Exports. ToBytes() is minimal big-endian; ToBytesPadded pads/truncates
  /// to exactly `size` bytes (fails if the value does not fit).
  [[nodiscard]] Bytes ToBytes() const;
  [[nodiscard]] Result<Bytes> ToBytesPadded(std::size_t size) const;
  [[nodiscard]] std::string ToDecimal() const;
  /// Low 64 bits (value must fit; checked in debug).
  [[nodiscard]] std::uint64_t ToU64() const;

  // Comparison.
  [[nodiscard]] int Compare(const BigUint& other) const;
  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.Compare(b) == 0;
  }
  friend auto operator<=>(const BigUint& a, const BigUint& b) {
    return a.Compare(b) <=> 0;
  }

  // Arithmetic (pure; operands unchanged).
  [[nodiscard]] BigUint Add(const BigUint& other) const;
  /// Requires *this >= other (checked; returns 0-clamped otherwise in
  /// release — callers in this code base always satisfy the precondition).
  [[nodiscard]] BigUint Sub(const BigUint& other) const;
  [[nodiscard]] BigUint Mul(const BigUint& other) const;
  /// Quotient and remainder; divisor must be nonzero.
  [[nodiscard]] Result<BigUintDivMod> DivMod(const BigUint& divisor) const;
  [[nodiscard]] BigUint Mod(const BigUint& modulus) const;
  [[nodiscard]] BigUint ShiftLeft(std::size_t bits) const;
  [[nodiscard]] BigUint ShiftRight(std::size_t bits) const;

  /// this^exponent mod modulus (square-and-multiply). modulus must be > 1.
  [[nodiscard]] BigUint ModPow(const BigUint& exponent,
                               const BigUint& modulus) const;
  [[nodiscard]] static BigUint Gcd(BigUint a, BigUint b);
  /// Multiplicative inverse of *this mod `modulus`, if gcd == 1.
  [[nodiscard]] Result<BigUint> ModInverse(const BigUint& modulus) const;

  /// Miller-Rabin probabilistic primality test with `rounds` random bases.
  [[nodiscard]] bool IsProbablePrime(int rounds, Rng& rng) const;
  /// Random prime with exactly `bits` bits (top two bits set so products
  /// of two such primes have exactly 2*bits bits, as RSA keygen wants).
  static BigUint RandomPrime(std::size_t bits, Rng& rng);

 private:
  void Trim();
  static BigUint SubUnchecked(const BigUint& a, const BigUint& b);

  std::vector<std::uint32_t> limbs_;  // little-endian; no trailing zeros
};

struct BigUintDivMod {
  BigUint quotient;
  BigUint remainder;
};

}  // namespace rgpdos::crypto
