#include "crypto/secure_random.hpp"

#include <random>

namespace rgpdos::crypto {

namespace {
std::uint64_t EntropySeed() {
  std::random_device rd;
  return (std::uint64_t(rd()) << 32) ^ rd();
}
}  // namespace

SecureRandom::SecureRandom() : rng_(EntropySeed()) {}

void SecureRandom::ReseedFromEntropy() { rng_ = Rng(EntropySeed()); }

void SecureRandom::Fill(std::uint8_t* out, std::size_t n) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(rng_.NextU64());
  }
}

Bytes SecureRandom::NextBytes(std::size_t n) {
  Bytes out(n);
  Fill(out.data(), n);
  return out;
}

}  // namespace rgpdos::crypto
