#include "crypto/chacha20.hpp"

namespace rgpdos::crypto {

namespace {

inline std::uint32_t Rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                         std::uint32_t& d) {
  a += b; d ^= a; d = Rotl(d, 16);
  c += d; b ^= c; b = Rotl(b, 12);
  a += b; d ^= a; d = Rotl(d, 8);
  c += d; b ^= c; b = Rotl(b, 7);
}

inline std::uint32_t LoadLe32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, 64> ChaCha20Block(const ChaChaKey& key,
                                           const ChaChaNonce& nonce,
                                           std::uint32_t counter) {
  // "expand 32-byte k"
  std::uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (int i = 0; i < 8; ++i) state[4 + i] = LoadLe32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = LoadLe32(nonce.data() + 4 * i);

  std::uint32_t working[16];
  for (int i = 0; i < 16; ++i) working[i] = state[i];

  for (int round = 0; round < 10; ++round) {
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }

  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = working[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

Bytes ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t counter, ByteSpan input) {
  Bytes out;
  out.reserve(input.size());
  std::size_t offset = 0;
  while (offset < input.size()) {
    const auto keystream = ChaCha20Block(key, nonce, counter++);
    const std::size_t take = std::min<std::size_t>(64, input.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(input[offset + i] ^ keystream[i]);
    }
    offset += take;
  }
  return out;
}

}  // namespace rgpdos::crypto
