#include "crypto/bigint.hpp"

#include <algorithm>
#include <cassert>

namespace rgpdos::crypto {

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Result<BigUint> BigUint::FromDecimal(std::string_view text) {
  if (text.empty()) return InvalidArgument("empty decimal string");
  BigUint out;
  const BigUint ten(10);
  for (char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgument("non-digit in decimal string");
    }
    out = out.Mul(ten).Add(BigUint(static_cast<std::uint64_t>(c - '0')));
  }
  return out;
}

BigUint BigUint::FromBytes(ByteSpan bytes) {
  BigUint out;
  // Big-endian input: most significant byte first.
  std::size_t n = bytes.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t byte_index = n - 1 - i;  // position from LSB
    out.limbs_[i / 4] |= std::uint32_t(bytes[byte_index]) << (8 * (i % 4));
  }
  out.Trim();
  return out;
}

BigUint BigUint::RandomWithBits(std::size_t bits, Rng& rng) {
  assert(bits >= 1);
  BigUint out;
  const std::size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) {
    limb = static_cast<std::uint32_t>(rng.NextU64());
  }
  const std::size_t top_bit = (bits - 1) % 32;
  // Clear bits above `bits`, force the MSB so the length is exact.
  out.limbs_.back() &= (top_bit == 31) ? 0xFFFFFFFFu
                                       : ((1u << (top_bit + 1)) - 1);
  out.limbs_.back() |= 1u << top_bit;
  return out;
}

std::size_t BigUint::BitLength() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::Bit(std::size_t index) const {
  const std::size_t limb = index / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (index % 32)) & 1;
}

Bytes BigUint::ToBytes() const {
  if (limbs_.empty()) return Bytes{0};
  Bytes out;
  out.reserve(limbs_.size() * 4);
  // Emit little-endian first, then reverse, then strip leading zeros.
  for (std::uint32_t limb : limbs_) {
    out.push_back(static_cast<std::uint8_t>(limb));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
  }
  while (out.size() > 1 && out.back() == 0) out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

Result<Bytes> BigUint::ToBytesPadded(std::size_t size) const {
  Bytes minimal = ToBytes();
  if (minimal.size() == 1 && minimal[0] == 0) minimal.clear();
  if (minimal.size() > size) {
    return OutOfRange("value does not fit in requested byte width");
  }
  Bytes out(size - minimal.size(), 0);
  out.insert(out.end(), minimal.begin(), minimal.end());
  return out;
}

std::string BigUint::ToDecimal() const {
  if (IsZero()) return "0";
  BigUint value = *this;
  const BigUint ten(10);
  std::string out;
  while (!value.IsZero()) {
    auto dm = value.DivMod(ten);
    // Divisor is the constant 10; DivMod cannot fail.
    out.push_back(static_cast<char>('0' + dm->remainder.ToU64()));
    value = std::move(dm->quotient);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint64_t BigUint::ToU64() const {
  assert(limbs_.size() <= 2);
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= std::uint64_t(limbs_[1]) << 32;
  return v;
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Add(const BigUint& other) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUint BigUint::SubUnchecked(const BigUint& a, const BigUint& b) {
  BigUint out;
  out.limbs_.reserve(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = std::int64_t(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t(1) << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.Trim();
  return out;
}

BigUint BigUint::Sub(const BigUint& other) const {
  assert(Compare(other) >= 0);
  if (Compare(other) < 0) return BigUint();  // clamp (documented)
  return SubUnchecked(*this, other);
}

BigUint BigUint::Mul(const BigUint& other) const {
  if (IsZero() || other.IsZero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t cur =
          out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

Result<BigUintDivMod> BigUint::DivMod(const BigUint& divisor) const {
  if (divisor.IsZero()) return InvalidArgument("division by zero");
  if (Compare(divisor) < 0) {
    return BigUintDivMod{BigUint(), *this};
  }

  // Single-limb divisor: simple schoolbook loop.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigUint quotient;
    quotient.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    quotient.Trim();
    return BigUintDivMod{std::move(quotient), BigUint(rem)};
  }

  // Knuth TAOCP vol. 2 Algorithm D, base 2^32.
  const std::size_t n = divisor.limbs_.size();
  const std::size_t m = limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigUint v = divisor.ShiftLeft(shift);
  BigUint u = ShiftLeft(shift);
  u.limbs_.resize(limbs_.size() + 1, 0);

  BigUint quotient;
  quotient.limbs_.assign(m + 1, 0);
  const std::uint64_t v_top = v.limbs_[n - 1];
  const std::uint64_t v_next = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two limbs of u against v_top.
    const std::uint64_t numerator =
        (std::uint64_t(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    std::uint64_t qhat = numerator / v_top;
    std::uint64_t rhat = numerator % v_top;
    while (qhat >= (std::uint64_t(1) << 32) ||
           qhat * v_next > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= (std::uint64_t(1) << 32)) break;
    }

    // D4: multiply and subtract u[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * v.limbs_[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = std::int64_t(u.limbs_[i + j]) -
                                std::int64_t(product & 0xFFFFFFFFu) - borrow;
      u.limbs_[i + j] = static_cast<std::uint32_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
    const std::int64_t diff =
        std::int64_t(u.limbs_[j + n]) - std::int64_t(carry) - borrow;
    u.limbs_[j + n] = static_cast<std::uint32_t>(diff);

    // D5/D6: if we subtracted too much, add one v back.
    if (diff < 0) {
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            std::uint64_t(u.limbs_[i + j]) + v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u.limbs_[j + n] =
          static_cast<std::uint32_t>(u.limbs_[j + n] + add_carry);
    }
    quotient.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  // D8: the remainder is u[0..n) shifted back.
  u.limbs_.resize(n);
  u.Trim();
  quotient.Trim();
  return BigUintDivMod{std::move(quotient), u.ShiftRight(shift)};
}

BigUint BigUint::Mod(const BigUint& modulus) const {
  auto dm = DivMod(modulus);
  assert(dm.ok());
  return std::move(dm)->remainder;
}

BigUint BigUint::ShiftLeft(std::size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = std::uint64_t(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigUint BigUint::ShiftRight(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUint();
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = std::uint64_t(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= std::uint64_t(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.Trim();
  return out;
}

BigUint BigUint::ModPow(const BigUint& exponent,
                        const BigUint& modulus) const {
  assert(modulus.BitLength() > 1);
  BigUint result(1);
  BigUint base = Mod(modulus);
  const std::size_t bits = exponent.BitLength();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.Bit(i)) {
      result = result.Mul(base).Mod(modulus);
    }
    base = base.Mul(base).Mod(modulus);
  }
  return result;
}

BigUint BigUint::Gcd(BigUint a, BigUint b) {
  while (!b.IsZero()) {
    BigUint r = a.Mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Result<BigUint> BigUint::ModInverse(const BigUint& modulus) const {
  // Extended Euclid with sign-tracked coefficients for t.
  BigUint r0 = modulus;
  BigUint r1 = Mod(modulus);
  BigUint t0;            // 0
  BigUint t1(1);
  bool t0_neg = false;
  bool t1_neg = false;

  while (!r1.IsZero()) {
    RGPD_ASSIGN_OR_RETURN(auto dm, r0.DivMod(r1));
    // t2 = t0 - q * t1, with explicit sign handling.
    BigUint qt = dm.quotient.Mul(t1);
    BigUint t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0.Compare(qt) >= 0) {
        t2 = t0.Sub(qt);
        t2_neg = t0_neg;
      } else {
        t2 = qt.Sub(t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0.Add(qt);
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(dm.remainder);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }

  if (!(r0 == BigUint(1))) {
    return InvalidArgument("modular inverse does not exist (gcd != 1)");
  }
  if (t0_neg) {
    return modulus.Sub(t0.Mod(modulus));
  }
  return t0.Mod(modulus);
}

bool BigUint::IsProbablePrime(int rounds, Rng& rng) const {
  if (Compare(BigUint(2)) < 0) return false;
  if (*this == BigUint(2) || *this == BigUint(3)) return true;
  if (!IsOdd()) return false;

  // Quick trial division by small primes.
  static constexpr std::uint32_t kSmallPrimes[] = {
      3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
      71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
      149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199};
  for (std::uint32_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (*this == bp) return true;
    if (Mod(bp).IsZero()) return false;
  }

  // Write n-1 = d * 2^r.
  const BigUint one(1);
  const BigUint n_minus_1 = Sub(one);
  BigUint d = n_minus_1;
  std::size_t r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }

  const std::size_t bits = BitLength();
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2]: draw bits-1 wide values until in range.
    BigUint a;
    do {
      a = RandomWithBits(bits > 2 ? bits - 1 : 2, rng);
    } while (a.Compare(BigUint(2)) < 0 || a.Compare(n_minus_1) >= 0);

    BigUint x = a.ModPow(d, *this);
    if (x == one || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = x.Mul(x).Mod(*this);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUint BigUint::RandomPrime(std::size_t bits, Rng& rng) {
  assert(bits >= 8);
  for (;;) {
    BigUint candidate = RandomWithBits(bits, rng);
    // Force odd and set the second-highest bit so p*q has 2*bits bits.
    candidate.limbs_[0] |= 1;
    const std::size_t second_top = bits - 2;
    candidate.limbs_[second_top / 32] |= 1u << (second_top % 32);
    if (candidate.IsProbablePrime(20, rng)) return candidate;
  }
}

}  // namespace rgpdos::crypto
