#include "dbfs/record_cache.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"

namespace rgpdos::dbfs {

RecordCache::RecordCache(std::size_t capacity, std::size_t generation_shards)
    : per_shard_capacity_(
          std::max<std::size_t>(1, capacity / kEntryShards)),
      shards_(kEntryShards),
      generations_(std::max<std::size_t>(1, generation_shards)) {
  for (auto& g : generations_) g.store(0, std::memory_order_relaxed);
}

std::optional<RecordCache::Entry> RecordCache::Lookup(RecordId id,
                                                      bool need_row) const {
  Entry copy;
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
    const auto it = shard.map.find(id);
    if (it == shard.map.end()) return std::nullopt;
    if (need_row && !it->second->second.has_row &&
        !it->second->second.erased) {
      return std::nullopt;  // membrane-only fill can't serve a data read
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    copy = it->second->second;
  }
  // Validate AFTER copying out: if the generation still equals the fill
  // stamp, no mutation of this subject's shard began since the fill, so
  // the copy is current. An odd (in-flight) or advanced generation
  // misses — the acknowledged mutation already erased the entry, this
  // only closes the copy-out race.
  if (generation(copy.subject_id) != copy.generation) return std::nullopt;
  return copy;
}

void RecordCache::Insert(RecordId id, Entry entry) {
  Shard& shard = ShardFor(id);
  std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
  const auto it = shard.map.find(id);
  if (it != shard.map.end()) {
    Entry& existing = it->second->second;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (existing.generation == entry.generation && existing.has_row &&
        !entry.has_row) {
      return;  // keep the richer same-generation fill
    }
    existing = std::move(entry);
    return;
  }
  shard.lru.emplace_front(id, std::move(entry));
  shard.map[id] = shard.lru.begin();
  while (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    RGPD_METRIC_COUNT("cache.record.evict");
  }
}

void RecordCache::Erase(RecordId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
  const auto it = shard.map.find(id);
  if (it != shard.map.end()) {
    shard.lru.erase(it->second);
    shard.map.erase(it);
    RGPD_METRIC_COUNT("cache.record.invalidate");
  }
}

std::size_t RecordCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<metrics::OrderedMutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace rgpdos::dbfs
