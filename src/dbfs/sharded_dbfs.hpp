// ShardedDbfs — N independent single-store DBFS instances behind one
// DbfsApi routing facade (ROADMAP open item 1: the storage spine for
// millions of subjects).
//
// Partitioning. Subjects are routed by `subject % N`: one shard owns a
// subject's whole subtree (records, membranes, exports, generations).
// Record ids and copy groups are minted per shard from disjoint strided
// progressions (IdAllocation{s, N}: s+1, s+1+N, …), so record-routed
// calls recover the owner as `(id - 1) % N` with no directory lookup,
// and ids stay globally unique and monotonic per shard across remounts.
// The schema tree is REPLICATED: CreateType applies to every shard, so
// any shard can validate rows and serve type lookups locally.
//
// Isolation. Each shard is a full vertical stack — its own block
// device, fault injector, latency model, block cache, its own
// journaled InodeStore (private group commit, private replay), its own
// record cache and generation domain. A journal stall, crash replay, or
// cache invalidation storm on one shard never touches another.
//
// Audit discipline. Single-target calls (Put, Get, HardDelete, …)
// forward to the owning shard, whose own sentinel gate fires exactly
// once — identical to a single-store boot. Fan-out calls (CreateType,
// RecordsOfType, SubjectsAfter, CopyGroupMembers, ReportSensitivity)
// gate ONCE here at the facade with the same request the single-store
// path would submit, then use the shards' sentinel-free internals
// (friend access) — so the audit trail for a workload is byte-identical
// at any shard count. The shard-count invariance test pins this.
//
// Crash semantics. Every shard journals and replays independently at
// Mount; the facade's Mount additionally reconciles the replicated type
// catalog (a crash mid-CreateType can leave a suffix of shards without
// the newest type — the union is re-applied, which is idempotent and
// safe because CreateType is the only catalog mutation and types are
// never dropped). No cross-shard transaction exists by construction:
// every mutating API call touches exactly one shard's stores.
//
// Thread-safety: the facade itself is stateless after construction
// (routing is pure arithmetic on the immutable shard vector); all
// synchronisation lives inside the per-shard Dbfs instances. Calls on
// different shards proceed with zero shared locking.
#pragma once

#include <memory>
#include <vector>

#include "dbfs/dbfs.hpp"

namespace rgpdos::dbfs {

class ShardedDbfs final : public DbfsApi {
 public:
  /// Format every store as an empty shard (shard i gets stores[i] and
  /// id progression {i, N}) and assemble the facade. When
  /// `sensitive_stores` is non-empty it must be N-long: shard i then
  /// segregates its high-sensitivity records onto sensitive_stores[i].
  static Result<std::unique_ptr<ShardedDbfs>> Format(
      const std::vector<inodefs::InodeStore*>& stores,
      sentinel::Sentinel* sentinel, const Clock* clock,
      const std::vector<inodefs::InodeStore*>& sensitive_stores = {});
  /// Mount every shard (each replays its own journal) with the same
  /// topology it was formatted with, then reconcile the replicated type
  /// catalog across shards (crash mid-CreateType tolerance).
  static Result<std::unique_ptr<ShardedDbfs>> Mount(
      const std::vector<inodefs::InodeStore*>& stores,
      sentinel::Sentinel* sentinel, const Clock* clock,
      const std::vector<inodefs::InodeStore*>& sensitive_stores = {});

  // ---- schema tree (replicated; facade-gated fan-out) -----------------------
  Status CreateType(sentinel::Domain caller,
                    const dsl::TypeDecl& decl) override;
  Result<const dsl::TypeDecl*> GetType(sentinel::Domain caller,
                                       std::string_view name) const override;
  [[nodiscard]] std::vector<std::string> TypeNames() const override;

  // ---- record surface (routed to the owning shard) --------------------------
  Result<RecordId> Put(sentinel::Domain caller, SubjectId subject,
                       std::string_view type_name, const db::Row& row,
                       membrane::Membrane membrane) override;
  Result<PdRecord> Get(sentinel::Domain caller, RecordId id) const override;
  Result<membrane::Membrane> GetMembrane(sentinel::Domain caller,
                                         RecordId id) const override;
  /// Batched fetch, grouped by owning shard ((id-1) % N) so each shard
  /// serves its ids through ONE amortised GetMany/GetMembraneMany call;
  /// results scatter back into request order.
  std::vector<Result<PdRecord>> GetMany(
      sentinel::Domain caller,
      const std::vector<RecordId>& ids) const override;
  std::vector<Result<membrane::Membrane>> GetMembraneMany(
      sentinel::Domain caller,
      const std::vector<RecordId>& ids) const override;
  Status UpdateRow(sentinel::Domain caller, RecordId id,
                   const db::Row& row) override;
  Status UpdateMembrane(sentinel::Domain caller, RecordId id,
                        const membrane::Membrane& membrane) override;
  Status HardDelete(sentinel::Domain caller, RecordId id) override;
  Status ReplaceWithEnvelope(sentinel::Domain caller, RecordId id,
                             ByteSpan envelope) override;
  Result<Bytes> GetEnvelope(sentinel::Domain caller,
                            RecordId id) const override;

  // ---- queries --------------------------------------------------------------
  Result<std::vector<RecordId>> RecordsOfType(
      sentinel::Domain caller, std::string_view type) const override;
  Result<std::vector<RecordId>> RecordsOfSubject(
      sentinel::Domain caller, SubjectId subject) const override;
  /// Merged cursor: each shard contributes its own ascending page, the
  /// facade k-way merges and truncates to `limit` — callers (retention
  /// sweeper, rights export) observe exactly the single-store contract.
  Result<std::vector<SubjectId>> SubjectsAfter(
      sentinel::Domain caller, SubjectId after,
      std::size_t limit) const override;
  Result<std::vector<RecordId>> CopyGroupMembers(
      sentinel::Domain caller, std::uint64_t group) const override;
  Result<SubjectExport> ExportSubject(sentinel::Domain caller,
                                      SubjectId subject) const override;

  std::uint64_t NewCopyGroup() override {
    // Shard 0's progression; any shard's ids are globally unique.
    return shards_.front()->NewCopyGroup();
  }

  // ---- decoded-record cache -------------------------------------------------
  /// `capacity` is the TOTAL entry budget, split evenly across shards
  /// (each shard keeps its own cache + generation domain).
  void EnableRecordCache(std::size_t capacity) override;
  [[nodiscard]] RecordCache* record_cache() override {
    return shards_.front()->record_cache();
  }
  [[nodiscard]] std::size_t cached_record_count() const override {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->cached_record_count();
    return total;
  }
  [[nodiscard]] std::uint64_t SubjectGeneration(
      SubjectId subject) const override {
    return ShardFor(subject).SubjectGeneration(subject);
  }

  [[nodiscard]] inodefs::InodeId processing_log_inode() const override {
    // The processing log lives on shard 0's store (one log per machine,
    // exactly as in a single-store boot).
    return shards_.front()->processing_log_inode();
  }

  [[nodiscard]] inodefs::InodeId audit_manifest_inode() const override {
    // Same placement as the processing log: shard 0's store.
    return shards_.front()->audit_manifest_inode();
  }

  // ---- stats ----------------------------------------------------------------
  Result<SensitivityReport> ReportSensitivity(
      sentinel::Domain caller) const override;
  [[nodiscard]] std::size_t record_count() const override;
  [[nodiscard]] std::size_t subject_count() const override;
  [[nodiscard]] inodefs::InodeStore& store() override {
    return shards_.front()->store();
  }

  // ---- sharding introspection -----------------------------------------------
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Dbfs& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] std::size_t ShardIndexOfSubject(SubjectId subject) const {
    return subject % shards_.size();
  }
  [[nodiscard]] std::size_t ShardIndexOfRecord(RecordId id) const {
    return id == 0 ? 0 : (id - 1) % shards_.size();
  }

 private:
  ShardedDbfs(std::vector<std::unique_ptr<Dbfs>> shards,
              sentinel::Sentinel* sentinel)
      : shards_(std::move(shards)), sentinel_(sentinel) {}

  [[nodiscard]] Dbfs& ShardFor(SubjectId subject) const {
    return *shards_[ShardIndexOfSubject(subject)];
  }
  [[nodiscard]] Dbfs& ShardForRecord(RecordId id) const {
    return *shards_[ShardIndexOfRecord(id)];
  }

  /// One sentinel decision for a fan-out call — same request a
  /// single-store Dbfs would submit for the same API call.
  Status Gate(sentinel::Domain caller, sentinel::Operation op,
              std::string detail) const;

  std::vector<std::unique_ptr<Dbfs>> shards_;  // immutable after boot
  sentinel::Sentinel* sentinel_;               // borrowed
};

}  // namespace rgpdos::dbfs
