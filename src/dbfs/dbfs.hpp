// DBFS — the database-oriented filesystem (paper Idea 3 and §3(1)).
//
// Layout follows the implementation section literally: PD is represented
// by two major inode trees on a dedicated InodeStore (its own device,
// separate from the NPD filesystem):
//
//   * the SUBJECT TREE gathers every PD from all subjects, "with a
//     separate set of inodes for each of them, grouping not only their
//     personal data but also the membrane": one kSubjectRoot inode per
//     subject listing its records; each record is a (kPdRecord inode,
//     kMembrane inode) pair;
//   * the SCHEMA TREE "provides the database structure, with a core
//     inode … for each table describing the structure of the contained
//     data … and a list of subject's inodes, providing an easy link to
//     quickly fetch the corresponding pieces of information": one
//     kTableSchema inode per type (the encoded TypeDecl) plus one
//     kSubjectIndex inode (append-only log of (record, subject) links);
//   * a dedicated kFormatHint inode "describes the general structure of
//     the data encoded in the inode subtree of each subject: meant to be
//     accessed only once by the filesystem during a given live session".
//
// Every mutating or reading entry point takes the caller's security
// domain and is gated by the sentinel (enforcement rule 4: only the DED
// accesses DBFS directly; the sysadmin may only administer types), and
// every stored record provably carries a membrane (enforcement rule 3).
//
// Thread-safety (see metrics/lock.hpp for the stack-wide order): three
// lock families guard the mutable state, always acquired in this order —
//   schema_mu_ (rank 52, reader-writer): the type catalog. CreateType
//     writes; every query takes it shared. TypeDecl pointers handed out
//     by GetType stay valid for the filesystem's lifetime (map nodes are
//     stable and types are never dropped).
//   subject shards (rank 51, one of kSubjectShards mutexes keyed by
//     subject id): serialise all structural work on one subject's
//     subtree — Put, erasure, export. A thread holds at most one shard.
//   index_mu_ (rank 50, reader-writer): the record-id B+tree and the
//     subjects map. Held only across in-memory operations, never across
//     store IO.
// Record ids and copy groups come from atomics. Format/Mount are
// boot-time (single-threaded by contract).
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/btree.hpp"
#include "db/schema.hpp"
#include "dbfs/record_cache.hpp"
#include "dsl/ast.hpp"
#include "inodefs/inode_store.hpp"
#include "membrane/membrane.hpp"
#include "metrics/lock.hpp"
#include "sentinel/policy.hpp"

namespace rgpdos::dbfs {

using RecordId = std::uint64_t;
using SubjectId = std::uint64_t;

/// A full PD record as handed to the DED.
struct PdRecord {
  RecordId record_id = 0;
  SubjectId subject_id = 0;
  std::string type_name;
  db::Row row;
  membrane::Membrane membrane;
  bool erased = false;  ///< crypto-erased: row bytes are an Envelope
};

/// Structured export of one subject's data (right of access / portability).
struct SubjectExport {
  SubjectId subject_id = 0;
  std::vector<PdRecord> records;
};

/// Identifier-space carve-up for one Dbfs instance. A standalone
/// filesystem uses {0, 1} — ids 1, 2, 3, … exactly as before. Shard s of
/// an N-way ShardedDbfs uses {s, N}: it mints record ids and copy groups
/// from the arithmetic progression s+1, s+1+N, s+1+2N, …, so ids from
/// different shards interleave without colliding and the owning shard of
/// any id is recoverable as (id - 1) % N with no directory lookup.
struct IdAllocation {
  std::uint64_t offset = 0;
  std::uint64_t stride = 1;
};

/// The DBFS surface as its consumers see it (DED, rights engine,
/// retention sweeper, processing store, …). Two implementations: the
/// single-store `Dbfs` below, and the N-way `ShardedDbfs` routing facade
/// (sharded_dbfs.hpp) that composes N of them behind the same contract.
class DbfsApi {
 public:
  /// Sensitivity segregation report (paper §2: "sensitive data … be
  /// stored separately from less sensitive data"): live record counts
  /// per sensitivity level and per type, for the sysadmin/regulator.
  struct SensitivityReport {
    std::array<std::size_t, 3> by_level{};  ///< [low, medium, high]
    std::map<std::string, std::size_t> high_by_type;
  };

  virtual ~DbfsApi() = default;

  // ---- schema tree (sysadmin surface) --------------------------------------
  virtual Status CreateType(sentinel::Domain caller,
                            const dsl::TypeDecl& decl) = 0;
  virtual Result<const dsl::TypeDecl*> GetType(sentinel::Domain caller,
                                               std::string_view name) const = 0;
  [[nodiscard]] virtual std::vector<std::string> TypeNames() const = 0;

  // ---- record surface (DED only) -------------------------------------------
  virtual Result<RecordId> Put(sentinel::Domain caller, SubjectId subject,
                               std::string_view type_name, const db::Row& row,
                               membrane::Membrane membrane) = 0;
  virtual Result<PdRecord> Get(sentinel::Domain caller, RecordId id) const = 0;
  virtual Result<membrane::Membrane> GetMembrane(sentinel::Domain caller,
                                                 RecordId id) const = 0;
  /// Batched fetch: one Result per id, in order. Semantically identical
  /// to calling Get/GetMembrane per id — same sentinel gating and audit
  /// trail per record — but implementations may amortise store IO across
  /// the whole batch (Dbfs reads every record's inodes in a handful of
  /// batched device submissions). The default is the per-id loop.
  virtual std::vector<Result<PdRecord>> GetMany(
      sentinel::Domain caller, const std::vector<RecordId>& ids) const;
  virtual std::vector<Result<membrane::Membrane>> GetMembraneMany(
      sentinel::Domain caller, const std::vector<RecordId>& ids) const;
  virtual Status UpdateRow(sentinel::Domain caller, RecordId id,
                           const db::Row& row) = 0;
  virtual Status UpdateMembrane(sentinel::Domain caller, RecordId id,
                                const membrane::Membrane& membrane) = 0;
  virtual Status HardDelete(sentinel::Domain caller, RecordId id) = 0;
  virtual Status ReplaceWithEnvelope(sentinel::Domain caller, RecordId id,
                                     ByteSpan envelope) = 0;
  virtual Result<Bytes> GetEnvelope(sentinel::Domain caller,
                                    RecordId id) const = 0;

  // ---- queries --------------------------------------------------------------
  virtual Result<std::vector<RecordId>> RecordsOfType(
      sentinel::Domain caller, std::string_view type) const = 0;
  virtual Result<std::vector<RecordId>> RecordsOfSubject(
      sentinel::Domain caller, SubjectId subject) const = 0;
  /// Paged subject enumeration: up to `limit` subject ids STRICTLY
  /// GREATER than `after`, ascending — across every shard when sharded.
  /// The retention sweeper's cursor primitive. An empty result means the
  /// cursor passed the last subject (wrap to `after = 0` for a new
  /// cycle).
  virtual Result<std::vector<SubjectId>> SubjectsAfter(
      sentinel::Domain caller, SubjectId after, std::size_t limit) const = 0;
  virtual Result<std::vector<RecordId>> CopyGroupMembers(
      sentinel::Domain caller, std::uint64_t group) const = 0;
  virtual Result<SubjectExport> ExportSubject(sentinel::Domain caller,
                                              SubjectId subject) const = 0;

  /// Fresh copy-group id for a newly collected record. Lock-free.
  virtual std::uint64_t NewCopyGroup() = 0;

  // ---- decoded-record cache -------------------------------------------------
  /// Attach the decoded-record cache (see record_cache.hpp for the
  /// generation protocol). Boot-time only: must not race record traffic.
  /// `capacity` == 0 leaves caching off (the historical read path).
  virtual void EnableRecordCache(std::size_t capacity) = 0;
  /// Null when caching is off. Sharded: shard 0's cache (each shard owns
  /// an independent cache + generation domain). Tests/introspection.
  [[nodiscard]] virtual RecordCache* record_cache() = 0;
  /// Decoded records held across EVERY shard's cache (0 when caching is
  /// off) — the shard-count-invariant warmth signal for tests.
  [[nodiscard]] virtual std::size_t cached_record_count() const = 0;
  /// Mutation generation of the subject's shard. Every acknowledged
  /// membrane/row mutation advances it by 2; an unchanged value between
  /// two reads proves no mutation of that subject's shard was
  /// acknowledged in between (caching on or off).
  [[nodiscard]] virtual std::uint64_t SubjectGeneration(
      SubjectId subject) const = 0;

  /// Inode reserved for the (hash-chained) processing log. Lives on the
  /// (first) DBFS store: the log names subjects and purposes, so it must
  /// not be readable through the NPD filesystem.
  [[nodiscard]] virtual inodefs::InodeId processing_log_inode() const = 0;

  /// Inode reserved for the durable audit pipeline's segment manifest
  /// (same confidentiality argument as the processing log).
  /// kInvalidInode on images formatted before the pipeline existed.
  [[nodiscard]] virtual inodefs::InodeId audit_manifest_inode() const = 0;

  // ---- stats ----------------------------------------------------------------
  virtual Result<SensitivityReport> ReportSensitivity(
      sentinel::Domain caller) const = 0;
  [[nodiscard]] virtual std::size_t record_count() const = 0;
  [[nodiscard]] virtual std::size_t subject_count() const = 0;
  /// The (first) backing store — the one holding the processing log.
  [[nodiscard]] virtual inodefs::InodeStore& store() = 0;
};

class ShardedDbfs;  // fwd (sharded_dbfs.hpp); befriended for ungated fan-out

class Dbfs final : public DbfsApi {
 public:
  /// Format the store as an empty DBFS and mount it. When
  /// `sensitive_store` is non-null, records of high-sensitivity types
  /// are physically segregated onto it ("the GDPR prescribes that
  /// sensitive data … be stored separately from less sensitive data",
  /// paper §2) — a separate device, separate journal, separate blast
  /// radius. The schema tree and subject tree stay on the primary store.
  /// `ids` carves the record-id / copy-group space (shard stride).
  static Result<std::unique_ptr<Dbfs>> Format(
      inodefs::InodeStore* store, sentinel::Sentinel* sentinel,
      const Clock* clock, inodefs::InodeStore* sensitive_store = nullptr,
      IdAllocation ids = {});
  /// Mount an existing DBFS: loads the schema tree, walks the subject
  /// tree to rebuild the in-memory record index. Pass the same
  /// `sensitive_store` topology and `ids` carve-up the filesystem was
  /// formatted with.
  static Result<std::unique_ptr<Dbfs>> Mount(
      inodefs::InodeStore* store, sentinel::Sentinel* sentinel,
      const Clock* clock, inodefs::InodeStore* sensitive_store = nullptr,
      IdAllocation ids = {});

  // ---- schema tree (sysadmin surface) ---------------------------------------

  Status CreateType(sentinel::Domain caller,
                    const dsl::TypeDecl& decl) override;
  Result<const dsl::TypeDecl*> GetType(sentinel::Domain caller,
                                       std::string_view name) const override;
  [[nodiscard]] std::vector<std::string> TypeNames() const override;

  // ---- record surface (DED only) --------------------------------------------

  /// Store a row with its membrane. Fails kFailedPrecondition if the
  /// membrane does not name this type/subject (rule 3 is structural:
  /// there is no membrane-less insertion path at all).
  Result<RecordId> Put(sentinel::Domain caller, SubjectId subject,
                       std::string_view type_name, const db::Row& row,
                       membrane::Membrane membrane) override;
  Result<PdRecord> Get(sentinel::Domain caller, RecordId id) const override;
  /// Membrane-only fetch — the DED's ded_load_membrane step reads this
  /// BEFORE any PD bytes leave the store.
  Result<membrane::Membrane> GetMembrane(sentinel::Domain caller,
                                         RecordId id) const override;
  /// Optimistic batched reads: record-cache hits are served per id, the
  /// misses' inodes go to InodeStore::ReadAllBatch in one amortised
  /// submission, and each result is validated against the subject's
  /// mutation seqlock (ShardGen below). Any id whose subject mutated
  /// mid-read falls back to the locked per-id path, so the results are
  /// always ones a plain Get at some point during the call could have
  /// returned.
  std::vector<Result<PdRecord>> GetMany(
      sentinel::Domain caller,
      const std::vector<RecordId>& ids) const override;
  std::vector<Result<membrane::Membrane>> GetMembraneMany(
      sentinel::Domain caller,
      const std::vector<RecordId>& ids) const override;
  Status UpdateRow(sentinel::Domain caller, RecordId id,
                   const db::Row& row) override;
  Status UpdateMembrane(sentinel::Domain caller, RecordId id,
                        const membrane::Membrane& membrane) override;

  /// Physical destruction: scrub the record's blocks, then scrub the
  /// journal history. After this returns no plaintext byte of the record
  /// survives anywhere on the device (invariant E8's hard-delete arm).
  Status HardDelete(sentinel::Domain caller, RecordId id) override;

  /// Crypto-erasure: replace the row bytes with `envelope` (sealed to the
  /// authority), revoke all consents, scrub old blocks + journal.
  Status ReplaceWithEnvelope(sentinel::Domain caller, RecordId id,
                             ByteSpan envelope) override;
  /// Raw envelope bytes of an erased record (authority recovery path).
  Result<Bytes> GetEnvelope(sentinel::Domain caller,
                            RecordId id) const override;

  // ---- queries ---------------------------------------------------------------

  Result<std::vector<RecordId>> RecordsOfType(
      sentinel::Domain caller, std::string_view type) const override;
  Result<std::vector<RecordId>> RecordsOfSubject(
      sentinel::Domain caller, SubjectId subject) const override;
  /// Paged subject enumeration: up to `limit` subject ids STRICTLY
  /// GREATER than `after`, ascending. The retention sweeper's cursor
  /// primitive — an incremental scan that never holds the index lock
  /// across more than one page. An empty result means the cursor passed
  /// the last subject (wrap to `after = 0` to start a new cycle).
  Result<std::vector<SubjectId>> SubjectsAfter(
      sentinel::Domain caller, SubjectId after,
      std::size_t limit) const override;
  /// All records sharing a copy group (membrane-consistency propagation).
  Result<std::vector<RecordId>> CopyGroupMembers(
      sentinel::Domain caller, std::uint64_t group) const override;
  Result<SubjectExport> ExportSubject(sentinel::Domain caller,
                                      SubjectId subject) const override;

  /// Fresh copy-group id for a newly collected record. Lock-free.
  std::uint64_t NewCopyGroup() override {
    return next_copy_group_.fetch_add(ids_.stride, std::memory_order_relaxed);
  }

  // ---- decoded-record cache ---------------------------------------------------

  /// Attach the decoded-record cache (see record_cache.hpp for the
  /// generation protocol). Boot-time only: must not race record traffic.
  /// `capacity` == 0 leaves caching off (the historical read path).
  void EnableRecordCache(std::size_t capacity) override;
  /// Null when caching is off. Exposed for tests and introspection.
  [[nodiscard]] RecordCache* record_cache() override {
    return record_cache_.get();
  }
  [[nodiscard]] std::size_t cached_record_count() const override {
    return record_cache_ == nullptr ? 0 : record_cache_->size();
  }
  /// Mutation generation of the subject's shard. Every acknowledged
  /// membrane/row mutation advances it by 2 (odd while in flight).
  /// Backed by the shard seqlock, so it works with caching off too —
  /// the DED's execute-time freshness check relies on that.
  [[nodiscard]] std::uint64_t SubjectGeneration(
      SubjectId subject) const override {
    return ShardGen(subject).load(std::memory_order_acquire);
  }

  /// Inode reserved for the (hash-chained) processing log. Lives on the
  /// DBFS store: the log names subjects and purposes, so it must not be
  /// readable through the NPD filesystem.
  [[nodiscard]] inodefs::InodeId processing_log_inode() const override {
    return processing_log_inode_;
  }

  /// Inode reserved for the durable audit pipeline's segment manifest;
  /// kInvalidInode on pre-pipeline images.
  [[nodiscard]] inodefs::InodeId audit_manifest_inode() const override {
    return audit_manifest_inode_;
  }

  // ---- stats -----------------------------------------------------------------

  Result<SensitivityReport> ReportSensitivity(
      sentinel::Domain caller) const override;

  [[nodiscard]] std::size_t record_count() const override;
  [[nodiscard]] std::size_t subject_count() const override;
  [[nodiscard]] inodefs::InodeStore& store() override { return *store_; }

 private:
  /// ShardedDbfs gates fan-out operations ONCE at the facade and then
  /// calls the *Ungated internals on every shard, so the audit trail is
  /// identical to a single-store boot (one sentinel decision per call).
  friend class ShardedDbfs;

  struct TypeEntry {
    dsl::TypeDecl decl;
    db::Schema schema;
    inodefs::InodeId schema_inode = inodefs::kInvalidInode;
    inodefs::InodeId subject_index_inode = inodefs::kInvalidInode;
  };

  /// In-memory location of a record (rebuilt from the subject tree).
  struct RecordLoc {
    SubjectId subject_id = 0;
    std::string type_name;
    inodefs::InodeId pd_inode = inodefs::kInvalidInode;
    inodefs::InodeId membrane_inode = inodefs::kInvalidInode;
    std::uint64_t copy_group = 0;
    bool erased = false;
    std::uint8_t store_id = 0;  ///< 0 = primary, 1 = sensitive
  };

  Dbfs(inodefs::InodeStore* store, sentinel::Sentinel* sentinel,
       const Clock* clock, inodefs::InodeStore* sensitive_store,
       IdAllocation ids)
      : store_(store),
        sensitive_store_(sensitive_store),
        sentinel_(sentinel),
        clock_(clock),
        ids_(ids),
        next_record_id_(ids.offset + 1),
        next_copy_group_(ids.offset + 1) {}

  /// The store a record's data inodes live on.
  [[nodiscard]] inodefs::InodeStore* StoreById(std::uint8_t store_id) const {
    return store_id == 1 && sensitive_store_ != nullptr ? sensitive_store_
                                                        : store_;
  }
  /// Which store new records of `level` go to.
  [[nodiscard]] std::uint8_t StoreIdFor(membrane::Sensitivity level) const {
    return level == membrane::Sensitivity::kHigh &&
                   sensitive_store_ != nullptr
               ? 1
               : 0;
  }

  Status Gate(sentinel::Domain caller, sentinel::Operation op,
              std::string detail) const;

  // Sentinel-free internals behind the gated fan-out surface (facade
  // audit discipline above). Each is exactly its public method minus the
  // Gate line.
  Status CreateTypeUngated(const dsl::TypeDecl& decl);
  Result<std::vector<RecordId>> RecordsOfTypeUngated(
      std::string_view type) const;
  Result<std::vector<SubjectId>> SubjectsAfterUngated(SubjectId after,
                                                      std::size_t limit) const;
  Result<std::vector<RecordId>> CopyGroupMembersUngated(
      std::uint64_t group) const;
  Result<SensitivityReport> ReportSensitivityUngated() const;

  /// Smallest id ≥ max(v, offset+1) inside this shard's progression —
  /// Mount's high-water marks come from raw on-disk ids and must be
  /// re-aligned to the stride before the first allocation.
  [[nodiscard]] std::uint64_t AlignNext(std::uint64_t v) const {
    const std::uint64_t base = ids_.offset + 1;
    if (v <= base) return base;
    const std::uint64_t rem = (v - base) % ids_.stride;
    return rem == 0 ? v : v + (ids_.stride - rem);
  }

  // Subject-tree persistence: each subject root holds the encoded list
  // of its record entries.
  struct SubjectEntry {
    RecordId record_id = 0;
    std::string type_name;
    inodefs::InodeId pd_inode = inodefs::kInvalidInode;
    inodefs::InodeId membrane_inode = inodefs::kInvalidInode;
    std::uint64_t copy_group = 0;
    bool erased = false;
    std::uint8_t store_id = 0;
  };
  Result<std::vector<SubjectEntry>> LoadSubjectRoot(
      inodefs::InodeId root) const;
  Status StoreSubjectRoot(inodefs::InodeId root,
                          const std::vector<SubjectEntry>& entries);
  Result<inodefs::InodeId> GetOrCreateSubjectRoot(SubjectId subject);

  Status PersistTypesMap();
  Status PersistSubjectsMap();
  Status PersistFormatHint();
  /// Thread-safe lookup (takes index_mu_ shared); returns a copy. A loc
  /// read here can go stale the moment the lock drops — mutators re-run
  /// Locate after taking the record's subject shard.
  Result<RecordLoc> Locate(RecordId id) const;
  /// subjects_ lookup under index_mu_ shared.
  Result<inodefs::InodeId> SubjectRootOf(SubjectId subject) const;

  static constexpr std::size_t kSubjectShards = 16;
  [[nodiscard]] metrics::OrderedMutex& SubjectShard(SubjectId subject) const {
    return shards_[subject % kSubjectShards].mu;
  }
  /// Per-subject-shard mutation seqlock, independent of the record cache
  /// (which has its own generation domain): odd while a mutator holds
  /// the shard, bumped to even before it releases. GetMany's optimistic
  /// batched reads validate against it — a snapshot that is even before
  /// the read and unchanged after proves no mutation overlapped.
  [[nodiscard]] std::atomic<std::uint64_t>& ShardGen(SubjectId subject) const {
    return shards_[subject % kSubjectShards].gen;
  }

  /// RAII mutation bracket: flips the shard seqlock odd on construction
  /// and even on destruction, and (when caching is on) mirrors that into
  /// the record cache's generation protocol, erasing the mutated entry —
  /// all BEFORE the mutator returns (and before it releases the subject
  /// shard mutex, which the caller must hold for the whole lifetime).
  class CacheMutationGuard {
   public:
    CacheMutationGuard(const Dbfs& db, SubjectId subject, RecordId id)
        : cache_(db.record_cache_.get()),
          gen_(db.ShardGen(subject)),
          subject_(subject),
          id_(id) {
      gen_.fetch_add(1, std::memory_order_acq_rel);  // -> odd
      if (cache_ != nullptr) cache_->BeginMutation(subject_);
    }
    ~CacheMutationGuard() {
      if (cache_ != nullptr) {
        cache_->Erase(id_);
        cache_->EndMutation(subject_);
      }
      gen_.fetch_add(1, std::memory_order_acq_rel);  // -> even
    }
    CacheMutationGuard(const CacheMutationGuard&) = delete;
    CacheMutationGuard& operator=(const CacheMutationGuard&) = delete;

   private:
    RecordCache* cache_;
    std::atomic<std::uint64_t>& gen_;
    SubjectId subject_;
    RecordId id_;
  };

  /// Fill the cache with a freshly decoded record (caller holds the
  /// subject shard mutex). Membrane-only when `row` is null.
  void FillRecordCache(RecordId id, const RecordLoc& loc,
                       const membrane::Membrane& membrane,
                       const db::Row* row) const;

  inodefs::InodeStore* store_;            // borrowed (primary)
  inodefs::InodeStore* sensitive_store_;  // borrowed; may be null
  sentinel::Sentinel* sentinel_;          // borrowed
  const Clock* clock_;                    // borrowed
  IdAllocation ids_;

  inodefs::InodeId master_inode_ = inodefs::kInvalidInode;
  inodefs::InodeId processing_log_inode_ = inodefs::kInvalidInode;
  inodefs::InodeId audit_manifest_inode_ = inodefs::kInvalidInode;
  inodefs::InodeId types_map_inode_ = inodefs::kInvalidInode;
  inodefs::InodeId subjects_map_inode_ = inodefs::kInvalidInode;
  inodefs::InodeId format_hint_inode_ = inodefs::kInvalidInode;

  mutable metrics::OrderedSharedMutex schema_mu_{
      metrics::LockRank::kDbfsSchema, "dbfs.schema"};
  struct Shard {
    metrics::OrderedMutex mu{metrics::LockRank::kDbfsSubjectShard,
                             "dbfs.subject_shard"};
    /// Mutation seqlock (see ShardGen). Written only under mu.
    mutable std::atomic<std::uint64_t> gen{0};
  };
  mutable std::array<Shard, kSubjectShards> shards_;
  mutable metrics::OrderedSharedMutex index_mu_{
      metrics::LockRank::kDbfsRecordIndex, "dbfs.record_index"};

  std::map<std::string, TypeEntry, std::less<>> types_;   // schema_mu_
  std::map<SubjectId, inodefs::InodeId> subjects_;        // index_mu_
  db::BPlusTree<RecordId, RecordLoc> records_;            // index_mu_
  std::unique_ptr<RecordCache> record_cache_;             // null = off
  std::atomic<RecordId> next_record_id_;
  std::atomic<std::uint64_t> next_copy_group_;
};

}  // namespace rgpdos::dbfs
