#include "dbfs/dbfs.hpp"

#include <algorithm>

#include "dsl/codec.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::dbfs {

namespace {
constexpr std::uint32_t kFormatHintMagic = 0x44424653;  // "DBFS"
constexpr std::uint32_t kFormatHintVersion = 1;

// Boot-time helper: raise an atomic high-water mark (Mount is
// single-threaded by contract, so a plain load/store race is fine).
template <typename T>
void Raise(std::atomic<T>& mark, T candidate) {
  if (mark.load(std::memory_order_relaxed) < candidate) {
    mark.store(candidate, std::memory_order_relaxed);
  }
}
}  // namespace

Status Dbfs::Gate(sentinel::Domain caller, sentinel::Operation op,
                  std::string detail) const {
  sentinel::AccessRequest request;
  request.subject = caller;
  request.object = sentinel::Domain::kDbfs;
  request.op = op;
  request.detail = std::move(detail);
  Status status = sentinel_->Enforce(request);
  if (!status.ok()) {
    RGPD_METRIC_COUNT("dbfs.denied.count");
  }
  return status;
}

std::vector<Result<PdRecord>> DbfsApi::GetMany(
    sentinel::Domain caller, const std::vector<RecordId>& ids) const {
  std::vector<Result<PdRecord>> out;
  out.reserve(ids.size());
  for (const RecordId id : ids) out.push_back(Get(caller, id));
  return out;
}

std::vector<Result<membrane::Membrane>> DbfsApi::GetMembraneMany(
    sentinel::Domain caller, const std::vector<RecordId>& ids) const {
  std::vector<Result<membrane::Membrane>> out;
  out.reserve(ids.size());
  for (const RecordId id : ids) out.push_back(GetMembrane(caller, id));
  return out;
}

Result<std::unique_ptr<Dbfs>> Dbfs::Format(
    inodefs::InodeStore* store, sentinel::Sentinel* sentinel,
    const Clock* clock, inodefs::InodeStore* sensitive_store,
    IdAllocation ids) {
  if (ids.stride == 0) return InvalidArgument("id stride must be >= 1");
  std::unique_ptr<Dbfs> fs(new Dbfs(store, sentinel, clock,
                                    sensitive_store, ids));
  RGPD_ASSIGN_OR_RETURN(fs->master_inode_,
                        store->AllocInode(inodefs::InodeKind::kFile));
  RGPD_ASSIGN_OR_RETURN(fs->types_map_inode_,
                        store->AllocInode(inodefs::InodeKind::kFile));
  RGPD_ASSIGN_OR_RETURN(fs->subjects_map_inode_,
                        store->AllocInode(inodefs::InodeKind::kFile));
  RGPD_ASSIGN_OR_RETURN(fs->format_hint_inode_,
                        store->AllocInode(inodefs::InodeKind::kFormatHint));
  RGPD_ASSIGN_OR_RETURN(fs->processing_log_inode_,
                        store->AllocInode(inodefs::InodeKind::kFile));
  RGPD_ASSIGN_OR_RETURN(fs->audit_manifest_inode_,
                        store->AllocInode(inodefs::InodeKind::kFile));
  RGPD_RETURN_IF_ERROR(fs->PersistFormatHint());

  ByteWriter master;
  master.PutU32(fs->types_map_inode_);
  master.PutU32(fs->subjects_map_inode_);
  master.PutU32(fs->format_hint_inode_);
  master.PutU32(fs->processing_log_inode_);
  master.PutU32(fs->audit_manifest_inode_);
  RGPD_RETURN_IF_ERROR(store->WriteAll(fs->master_inode_, master.buffer()));
  store->SetRootDir(fs->master_inode_);
  RGPD_RETURN_IF_ERROR(store->Sync());
  return fs;
}

Result<std::unique_ptr<Dbfs>> Dbfs::Mount(
    inodefs::InodeStore* store, sentinel::Sentinel* sentinel,
    const Clock* clock, inodefs::InodeStore* sensitive_store,
    IdAllocation ids) {
  if (ids.stride == 0) return InvalidArgument("id stride must be >= 1");
  std::unique_ptr<Dbfs> fs(new Dbfs(store, sentinel, clock,
                                    sensitive_store, ids));
  fs->master_inode_ = store->superblock().root_dir;
  if (fs->master_inode_ == inodefs::kInvalidInode) {
    return FailedPrecondition("store holds no DBFS (format it first)");
  }
  RGPD_ASSIGN_OR_RETURN(Bytes master_bytes,
                        store->ReadAll(fs->master_inode_));
  ByteReader master(master_bytes);
  RGPD_ASSIGN_OR_RETURN(fs->types_map_inode_, master.GetU32());
  RGPD_ASSIGN_OR_RETURN(fs->subjects_map_inode_, master.GetU32());
  RGPD_ASSIGN_OR_RETURN(fs->format_hint_inode_, master.GetU32());
  RGPD_ASSIGN_OR_RETURN(fs->processing_log_inode_, master.GetU32());
  // Images formatted before the durable audit pipeline carry a 4-field
  // master record; they mount fine, just with no audit manifest.
  if (!master.exhausted()) {
    RGPD_ASSIGN_OR_RETURN(fs->audit_manifest_inode_, master.GetU32());
  }

  // Format hint: read once per live session (paper §3) to learn the
  // subject-subtree encoding before touching any subject inode.
  RGPD_ASSIGN_OR_RETURN(Bytes hint, store->ReadAll(fs->format_hint_inode_));
  ByteReader hint_reader(hint);
  RGPD_ASSIGN_OR_RETURN(std::uint32_t magic, hint_reader.GetU32());
  RGPD_ASSIGN_OR_RETURN(std::uint32_t version, hint_reader.GetU32());
  if (magic != kFormatHintMagic || version != kFormatHintVersion) {
    return Corruption("DBFS format hint mismatch");
  }

  // Schema tree.
  RGPD_ASSIGN_OR_RETURN(Bytes types_log, store->ReadAll(fs->types_map_inode_));
  ByteReader types_reader(types_log);
  while (!types_reader.exhausted()) {
    TypeEntry entry;
    RGPD_ASSIGN_OR_RETURN(std::string name, types_reader.GetString());
    RGPD_ASSIGN_OR_RETURN(entry.schema_inode, types_reader.GetU32());
    RGPD_ASSIGN_OR_RETURN(entry.subject_index_inode, types_reader.GetU32());
    RGPD_ASSIGN_OR_RETURN(Bytes decl_bytes,
                          store->ReadAll(entry.schema_inode));
    RGPD_ASSIGN_OR_RETURN(entry.decl, dsl::DecodeTypeDecl(decl_bytes));
    entry.schema = entry.decl.ToSchema();
    // The subject-index log is append-only and keeps links of deleted
    // records too; scanning it keeps record ids monotonic across
    // delete + remount, so a stale PdRef can never alias a new record.
    RGPD_ASSIGN_OR_RETURN(Bytes index_log,
                          store->ReadAll(entry.subject_index_inode));
    ByteReader index_reader(index_log);
    while (!index_reader.exhausted()) {
      RGPD_ASSIGN_OR_RETURN(RecordId id, index_reader.GetU64());
      RGPD_ASSIGN_OR_RETURN(SubjectId subject, index_reader.GetU64());
      (void)subject;
      Raise(fs->next_record_id_, id + 1);
    }
    fs->types_.emplace(std::move(name), std::move(entry));
  }

  // Subject tree: subjects map, then each subject root.
  RGPD_ASSIGN_OR_RETURN(Bytes subjects_log,
                        store->ReadAll(fs->subjects_map_inode_));
  ByteReader subjects_reader(subjects_log);
  while (!subjects_reader.exhausted()) {
    RGPD_ASSIGN_OR_RETURN(SubjectId subject, subjects_reader.GetU64());
    RGPD_ASSIGN_OR_RETURN(std::uint32_t root, subjects_reader.GetU32());
    fs->subjects_[subject] = root;
  }
  for (const auto& [subject, root] : fs->subjects_) {
    RGPD_ASSIGN_OR_RETURN(std::vector<SubjectEntry> entries,
                          fs->LoadSubjectRoot(root));
    for (const SubjectEntry& e : entries) {
      RecordLoc loc;
      loc.subject_id = subject;
      loc.type_name = e.type_name;
      loc.pd_inode = e.pd_inode;
      loc.membrane_inode = e.membrane_inode;
      loc.copy_group = e.copy_group;
      loc.erased = e.erased;
      loc.store_id = e.store_id;
      fs->records_.Insert(e.record_id, std::move(loc));
      Raise(fs->next_record_id_, e.record_id + 1);
      Raise(fs->next_copy_group_, e.copy_group + 1);
    }
  }
  // The high-water marks above come from raw on-disk ids (which, on a
  // shard, include strides of the OTHER shards' copy groups via
  // propagated membranes); snap them back onto this shard's progression.
  fs->next_record_id_.store(
      fs->AlignNext(fs->next_record_id_.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
  fs->next_copy_group_.store(
      fs->AlignNext(fs->next_copy_group_.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
  return fs;
}

Status Dbfs::PersistFormatHint() {
  ByteWriter w;
  w.PutU32(kFormatHintMagic);
  w.PutU32(kFormatHintVersion);
  // Self-description of the subject-entry encoding, for forward compat.
  w.PutString(
      "subject_entry := record_id:u64 type:str pd:u32 membrane:u32 "
      "copy_group:u64 erased:bool store:u8");
  return store_->WriteAll(format_hint_inode_, w.buffer());
}

Status Dbfs::PersistTypesMap() {
  ByteWriter w;
  for (const auto& [name, entry] : types_) {
    w.PutString(name);
    w.PutU32(entry.schema_inode);
    w.PutU32(entry.subject_index_inode);
  }
  return store_->WriteAll(types_map_inode_, w.buffer());
}

Status Dbfs::PersistSubjectsMap() {
  ByteWriter w;
  for (const auto& [subject, root] : subjects_) {
    w.PutU64(subject);
    w.PutU32(root);
  }
  return store_->WriteAll(subjects_map_inode_, w.buffer());
}

Result<std::vector<Dbfs::SubjectEntry>> Dbfs::LoadSubjectRoot(
    inodefs::InodeId root) const {
  RGPD_ASSIGN_OR_RETURN(Bytes raw, store_->ReadAll(root));
  std::vector<SubjectEntry> entries;
  ByteReader r(raw);
  RGPD_ASSIGN_OR_RETURN(std::uint64_t count, r.GetVarint());
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SubjectEntry e;
    RGPD_ASSIGN_OR_RETURN(e.record_id, r.GetU64());
    RGPD_ASSIGN_OR_RETURN(e.type_name, r.GetString());
    RGPD_ASSIGN_OR_RETURN(e.pd_inode, r.GetU32());
    RGPD_ASSIGN_OR_RETURN(e.membrane_inode, r.GetU32());
    RGPD_ASSIGN_OR_RETURN(e.copy_group, r.GetU64());
    RGPD_ASSIGN_OR_RETURN(e.erased, r.GetBool());
    RGPD_ASSIGN_OR_RETURN(e.store_id, r.GetU8());
    entries.push_back(std::move(e));
  }
  return entries;
}

Status Dbfs::StoreSubjectRoot(inodefs::InodeId root,
                              const std::vector<SubjectEntry>& entries) {
  ByteWriter w;
  w.PutVarint(entries.size());
  for (const SubjectEntry& e : entries) {
    w.PutU64(e.record_id);
    w.PutString(e.type_name);
    w.PutU32(e.pd_inode);
    w.PutU32(e.membrane_inode);
    w.PutU64(e.copy_group);
    w.PutBool(e.erased);
    w.PutU8(e.store_id);
  }
  return store_->WriteAll(root, w.buffer());
}

Result<inodefs::InodeId> Dbfs::GetOrCreateSubjectRoot(SubjectId subject) {
  // Caller holds the subject's shard mutex, so no other thread can be
  // creating THIS subject concurrently; index_mu_ only protects the map
  // itself against other subjects' inserts.
  {
    std::shared_lock<metrics::OrderedSharedMutex> lock(index_mu_);
    const auto it = subjects_.find(subject);
    if (it != subjects_.end()) return it->second;
  }
  RGPD_ASSIGN_OR_RETURN(inodefs::InodeId root,
                        store_->AllocInode(inodefs::InodeKind::kSubjectRoot));
  RGPD_RETURN_IF_ERROR(StoreSubjectRoot(root, {}));
  {
    std::lock_guard<metrics::OrderedSharedMutex> lock(index_mu_);
    subjects_[subject] = root;
  }
  // Append-only subjects map: one small write per NEW subject.
  ByteWriter w;
  w.PutU64(subject);
  w.PutU32(root);
  RGPD_RETURN_IF_ERROR(store_->Append(subjects_map_inode_, w.buffer()));
  return root;
}

// ---- schema tree --------------------------------------------------------------

Status Dbfs::CreateType(sentinel::Domain caller, const dsl::TypeDecl& decl) {
  RGPD_RETURN_IF_ERROR(
      Gate(caller, sentinel::Operation::kCreate, "type=" + decl.name));
  return CreateTypeUngated(decl);
}

Status Dbfs::CreateTypeUngated(const dsl::TypeDecl& decl) {
  RGPD_RETURN_IF_ERROR(decl.Validate());
  std::lock_guard<metrics::OrderedSharedMutex> lock(schema_mu_);
  if (types_.count(decl.name) != 0) {
    return AlreadyExists("type exists: " + decl.name);
  }
  TypeEntry entry;
  entry.decl = decl;
  entry.schema = decl.ToSchema();
  RGPD_ASSIGN_OR_RETURN(entry.schema_inode,
                        store_->AllocInode(inodefs::InodeKind::kTableSchema));
  RGPD_ASSIGN_OR_RETURN(
      entry.subject_index_inode,
      store_->AllocInode(inodefs::InodeKind::kSubjectIndex));
  RGPD_RETURN_IF_ERROR(
      store_->WriteAll(entry.schema_inode, dsl::EncodeTypeDecl(decl)));
  types_.emplace(decl.name, std::move(entry));
  return PersistTypesMap();
}

Result<const dsl::TypeDecl*> Dbfs::GetType(sentinel::Domain caller,
                                           std::string_view name) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kReadSchema,
                            "type=" + std::string(name)));
  std::shared_lock<metrics::OrderedSharedMutex> lock(schema_mu_);
  const auto it = types_.find(name);
  if (it == types_.end()) {
    return NotFound("no type: " + std::string(name));
  }
  // Map nodes are stable and types are never erased, so the pointer
  // outlives the lock.
  return &it->second.decl;
}

std::vector<std::string> Dbfs::TypeNames() const {
  std::shared_lock<metrics::OrderedSharedMutex> lock(schema_mu_);
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (const auto& [name, entry] : types_) names.push_back(name);
  return names;
}

// ---- decoded-record cache -----------------------------------------------------

void Dbfs::EnableRecordCache(std::size_t capacity) {
  if (capacity == 0) {
    record_cache_.reset();
    return;
  }
  // Generation shards MUST mirror the subject shards: the seqlock
  // protocol needs "same generation shard => same subject shard mutex".
  record_cache_ = std::make_unique<RecordCache>(capacity, kSubjectShards);
}

void Dbfs::FillRecordCache(RecordId id, const RecordLoc& loc,
                           const membrane::Membrane& membrane,
                           const db::Row* row) const {
  if (record_cache_ == nullptr) return;
  RecordCache::Entry entry;
  entry.subject_id = loc.subject_id;
  entry.type_name = loc.type_name;
  entry.membrane = membrane;
  if (row != nullptr) {
    entry.row = *row;
    entry.has_row = true;
  }
  entry.erased = loc.erased;
  // The caller holds the subject shard mutex, so no mutation of this
  // subject is in flight and the generation is even (stable).
  entry.generation = record_cache_->generation(loc.subject_id);
  record_cache_->Insert(id, std::move(entry));
}

// ---- record surface ------------------------------------------------------------

Result<Dbfs::RecordLoc> Dbfs::Locate(RecordId id) const {
  std::shared_lock<metrics::OrderedSharedMutex> lock(index_mu_);
  const RecordLoc* loc = records_.Find(id);
  if (loc == nullptr) {
    return NotFound("no PD record " + std::to_string(id));
  }
  return *loc;
}

Result<inodefs::InodeId> Dbfs::SubjectRootOf(SubjectId subject) const {
  std::shared_lock<metrics::OrderedSharedMutex> lock(index_mu_);
  const auto it = subjects_.find(subject);
  if (it == subjects_.end()) {
    return NotFound("no subject " + std::to_string(subject));
  }
  return it->second;
}

Result<RecordId> Dbfs::Put(sentinel::Domain caller, SubjectId subject,
                           std::string_view type_name, const db::Row& row,
                           membrane::Membrane membrane) {
  RGPD_METRIC_COUNT("dbfs.put.count");
  RGPD_METRIC_SCOPED_LATENCY("dbfs.put.latency_ns");
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kCreate,
                            "put type=" + std::string(type_name)));
  std::shared_lock<metrics::OrderedSharedMutex> schema_lock(schema_mu_);
  const auto type_it = types_.find(type_name);
  if (type_it == types_.end()) {
    return NotFound("no type: " + std::string(type_name));
  }
  RGPD_RETURN_IF_ERROR(type_it->second.schema.ValidateRow(row));
  // Enforcement rule (3): the membrane must be present and coherent.
  if (membrane.type_name != type_name) {
    return FailedPrecondition("membrane names type '" + membrane.type_name +
                              "', record is '" + std::string(type_name) +
                              "'");
  }
  if (membrane.subject_id != subject) {
    return FailedPrecondition("membrane subject does not match record");
  }
  if (membrane.copy_group == 0) {
    membrane.copy_group =
        next_copy_group_.fetch_add(ids_.stride, std::memory_order_relaxed);
  }

  // Serialise this subject's subtree, then resolve its root BEFORE the
  // group scope takes the store lock (the root lookup needs index_mu_,
  // which ranks above the store).
  std::lock_guard<metrics::OrderedMutex> shard_lock(SubjectShard(subject));
  RGPD_ASSIGN_OR_RETURN(inodefs::InodeId root,
                        GetOrCreateSubjectRoot(subject));

  const RecordId id =
      next_record_id_.fetch_add(ids_.stride, std::memory_order_relaxed);
  const std::uint8_t store_id =
      StoreIdFor(type_it->second.decl.sensitivity);
  inodefs::InodeStore* data_store = StoreById(store_id);
  inodefs::InodeId pd_inode = inodefs::kInvalidInode;
  inodefs::InodeId membrane_inode = inodefs::kInvalidInode;
  {
    // One journal record for the whole insert (7 per-txn appends
    // otherwise). Physical segregation: high-sensitivity records live
    // on the dedicated sensitive store when one is attached; its writes
    // nest under the primary scope thanks to its lower lock rank.
    inodefs::InodeStore::GroupCommitScope group(*store_);
    RGPD_ASSIGN_OR_RETURN(
        pd_inode, data_store->AllocInode(inodefs::InodeKind::kPdRecord));
    RGPD_ASSIGN_OR_RETURN(
        membrane_inode,
        data_store->AllocInode(inodefs::InodeKind::kMembrane));
    const Bytes row_bytes = type_it->second.schema.EncodeRow(row);
    const Bytes membrane_bytes = membrane.Serialize();
    // Logical payload size — denominator of the journal.write_amp gauge
    // (journal bytes actually logged per byte the caller stored).
    RGPD_METRIC_COUNT_N("dbfs.put.logical_bytes",
                        row_bytes.size() + membrane_bytes.size());
    RGPD_RETURN_IF_ERROR(data_store->WriteAll(pd_inode, row_bytes));
    RGPD_RETURN_IF_ERROR(
        data_store->WriteAll(membrane_inode, membrane_bytes));

    RGPD_ASSIGN_OR_RETURN(std::vector<SubjectEntry> entries,
                          LoadSubjectRoot(root));
    SubjectEntry entry;
    entry.record_id = id;
    entry.type_name = std::string(type_name);
    entry.pd_inode = pd_inode;
    entry.membrane_inode = membrane_inode;
    entry.copy_group = membrane.copy_group;
    entry.erased = false;
    entry.store_id = store_id;
    entries.push_back(std::move(entry));
    RGPD_RETURN_IF_ERROR(StoreSubjectRoot(root, entries));

    // Schema-tree link: append (record, subject) to the type's index.
    ByteWriter link;
    link.PutU64(id);
    link.PutU64(subject);
    RGPD_RETURN_IF_ERROR(
        store_->Append(type_it->second.subject_index_inode, link.buffer()));
    RGPD_RETURN_IF_ERROR(group.Finish());
  }

  RecordLoc loc;
  loc.subject_id = subject;
  loc.type_name = std::string(type_name);
  loc.pd_inode = pd_inode;
  loc.membrane_inode = membrane_inode;
  loc.copy_group = membrane.copy_group;
  loc.store_id = store_id;
  {
    std::lock_guard<metrics::OrderedSharedMutex> index_lock(index_mu_);
    records_.Insert(id, std::move(loc));
  }
  return id;
}

Result<PdRecord> Dbfs::Get(sentinel::Domain caller, RecordId id) const {
  RGPD_METRIC_COUNT("dbfs.get.count");
  RGPD_METRIC_SCOPED_LATENCY("dbfs.get.latency_ns");
  RGPD_RETURN_IF_ERROR(
      Gate(caller, sentinel::Operation::kRead, "record=" + std::to_string(id)));
  // Fast path: a generation-validated cache hit needs no lock in the
  // subject tree and no store IO at all.
  if (record_cache_ != nullptr) {
    if (auto hit = record_cache_->Lookup(id, /*need_row=*/true)) {
      RGPD_METRIC_COUNT("cache.record.hit");
      PdRecord record;
      record.record_id = id;
      record.subject_id = hit->subject_id;
      record.type_name = std::move(hit->type_name);
      record.erased = hit->erased;
      record.membrane = std::move(hit->membrane);
      record.row = std::move(hit->row);
      return record;
    }
    RGPD_METRIC_COUNT("cache.record.miss");
  }
  std::shared_lock<metrics::OrderedSharedMutex> schema_lock(schema_mu_);
  // Locate, then pin the subject shard and re-validate: the shard
  // excludes a concurrent HardDelete from freeing (and the allocator
  // from recycling) the record's inodes while we read them.
  RGPD_ASSIGN_OR_RETURN(RecordLoc loc, Locate(id));
  std::lock_guard<metrics::OrderedMutex> shard_lock(
      SubjectShard(loc.subject_id));
  RGPD_ASSIGN_OR_RETURN(loc, Locate(id));
  PdRecord record;
  record.record_id = id;
  record.subject_id = loc.subject_id;
  record.type_name = loc.type_name;
  record.erased = loc.erased;
  inodefs::InodeStore* data_store = StoreById(loc.store_id);
  RGPD_ASSIGN_OR_RETURN(Bytes membrane_bytes,
                        data_store->ReadAll(loc.membrane_inode));
  RGPD_ASSIGN_OR_RETURN(record.membrane,
                        membrane::Membrane::Deserialize(membrane_bytes));
  if (!loc.erased) {
    const auto type_it = types_.find(loc.type_name);
    if (type_it == types_.end()) {
      return Corruption("record references unknown type");
    }
    RGPD_ASSIGN_OR_RETURN(Bytes row_bytes,
                          data_store->ReadAll(loc.pd_inode));
    RGPD_ASSIGN_OR_RETURN(record.row,
                          type_it->second.schema.DecodeRow(row_bytes));
  }
  FillRecordCache(id, loc, record.membrane,
                  loc.erased ? nullptr : &record.row);
  return record;
}

Result<membrane::Membrane> Dbfs::GetMembrane(sentinel::Domain caller,
                                             RecordId id) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "membrane record=" + std::to_string(id)));
  if (record_cache_ != nullptr) {
    if (auto hit = record_cache_->Lookup(id, /*need_row=*/false)) {
      RGPD_METRIC_COUNT("cache.record.hit");
      return std::move(hit->membrane);
    }
    RGPD_METRIC_COUNT("cache.record.miss");
  }
  RGPD_ASSIGN_OR_RETURN(RecordLoc loc, Locate(id));
  std::lock_guard<metrics::OrderedMutex> shard_lock(
      SubjectShard(loc.subject_id));
  RGPD_ASSIGN_OR_RETURN(loc, Locate(id));
  RGPD_ASSIGN_OR_RETURN(Bytes membrane_bytes,
                        StoreById(loc.store_id)->ReadAll(loc.membrane_inode));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        membrane::Membrane::Deserialize(membrane_bytes));
  FillRecordCache(id, loc, m, /*row=*/nullptr);
  return m;
}

std::vector<Result<PdRecord>> Dbfs::GetMany(
    sentinel::Domain caller, const std::vector<RecordId>& ids) const {
  Stopwatch latency_watch;
  std::vector<Result<PdRecord>> out;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out.push_back(Internal("GetMany slot not filled"));
  }

  // One entry per id that missed the cache. `bucket`/`*_pos` index into
  // the per-store batched read below.
  struct Miss {
    std::size_t slot = 0;
    RecordId id = 0;
    RecordLoc loc;
    std::uint64_t gen = 0;
    int bucket = 0;
    std::size_t membrane_pos = 0;
    std::size_t row_pos = 0;  ///< valid iff has_row
    bool has_row = false;
    bool pending = false;   ///< located with an even seqlock snapshot
    bool fallback = false;  ///< retry through the locked per-id path
  };
  std::vector<Miss> misses;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const RecordId id = ids[i];
    RGPD_METRIC_COUNT("dbfs.get.count");
    if (Status gate = Gate(caller, sentinel::Operation::kRead,
                           "record=" + std::to_string(id));
        !gate.ok()) {
      out[i] = std::move(gate);
      continue;
    }
    if (record_cache_ != nullptr) {
      if (auto hit = record_cache_->Lookup(id, /*need_row=*/true)) {
        RGPD_METRIC_COUNT("cache.record.hit");
        PdRecord record;
        record.record_id = id;
        record.subject_id = hit->subject_id;
        record.type_name = std::move(hit->type_name);
        record.erased = hit->erased;
        record.membrane = std::move(hit->membrane);
        record.row = std::move(hit->row);
        out[i] = std::move(record);
        continue;
      }
      RGPD_METRIC_COUNT("cache.record.miss");
    }
    Miss miss;
    miss.slot = i;
    miss.id = id;
    misses.push_back(std::move(miss));
  }
  if (!misses.empty()) {
    std::shared_lock<metrics::OrderedSharedMutex> schema_lock(schema_mu_);
    // Locate every miss and snapshot its subject's mutation seqlock. An
    // odd snapshot means a mutator holds the shard right now — no point
    // reading optimistically, go straight to the locked path.
    std::array<std::vector<inodefs::InodeId>, 2> want;
    for (Miss& miss : misses) {
      Result<RecordLoc> loc = Locate(miss.id);
      if (!loc.ok()) {
        out[miss.slot] = loc.status();
        continue;
      }
      miss.loc = std::move(*loc);
      miss.gen =
          ShardGen(miss.loc.subject_id).load(std::memory_order_acquire);
      if (miss.gen % 2 != 0) {
        miss.fallback = true;
        continue;
      }
      miss.bucket =
          miss.loc.store_id == 1 && sensitive_store_ != nullptr ? 1 : 0;
      auto& list = want[miss.bucket];
      miss.membrane_pos = list.size();
      list.push_back(miss.loc.membrane_inode);
      if (!miss.loc.erased) {
        miss.has_row = true;
        miss.row_pos = list.size();
        list.push_back(miss.loc.pd_inode);
      }
      miss.pending = true;
    }

    // The whole batch's inodes in (at most) two amortised submissions,
    // WITHOUT any subject shard held — mutators are not blocked, the
    // seqlock re-check below catches them instead.
    std::array<std::vector<Result<Bytes>>, 2> got;
    if (!want[0].empty()) got[0] = store_->ReadAllBatch(want[0]);
    if (!want[1].empty()) got[1] = sensitive_store_->ReadAllBatch(want[1]);

    for (Miss& miss : misses) {
      if (!miss.pending) continue;
      // Unchanged-and-even proves no mutation of this subject's shard
      // overlapped the read, so the slots form a consistent image.
      if (ShardGen(miss.loc.subject_id).load(std::memory_order_acquire) !=
          miss.gen) {
        miss.fallback = true;
        continue;
      }
      const auto decode = [&]() -> Result<PdRecord> {
        PdRecord record;
        record.record_id = miss.id;
        record.subject_id = miss.loc.subject_id;
        record.type_name = miss.loc.type_name;
        record.erased = miss.loc.erased;
        const Result<Bytes>& membrane_bytes =
            got[miss.bucket][miss.membrane_pos];
        RGPD_RETURN_IF_ERROR(membrane_bytes.status());
        RGPD_ASSIGN_OR_RETURN(
            record.membrane,
            membrane::Membrane::Deserialize(*membrane_bytes));
        if (miss.has_row) {
          const auto type_it = types_.find(record.type_name);
          if (type_it == types_.end()) {
            return Corruption("record references unknown type");
          }
          const Result<Bytes>& row_bytes = got[miss.bucket][miss.row_pos];
          RGPD_RETURN_IF_ERROR(row_bytes.status());
          RGPD_ASSIGN_OR_RETURN(record.row,
                                type_it->second.schema.DecodeRow(*row_bytes));
        }
        return record;
      };
      Result<PdRecord> record = decode();
      if (!record.ok()) {
        // Even under an unchanged seqlock, let the locked path render
        // the authoritative verdict for a failed slot.
        miss.fallback = true;
        continue;
      }
      if (record_cache_ != nullptr) {
        std::lock_guard<metrics::OrderedMutex> shard_lock(
            SubjectShard(miss.loc.subject_id));
        // Fill only if still unmutated — FillRecordCache's contract
        // requires the generation it snapshots to cover the bytes read.
        if (ShardGen(miss.loc.subject_id)
                .load(std::memory_order_acquire) == miss.gen) {
          FillRecordCache(miss.id, miss.loc, record->membrane,
                          miss.has_row ? &record->row : nullptr);
        }
      }
      out[miss.slot] = std::move(*record);
    }
  }  // schema_mu_ released: the fallbacks below re-enter Get.

  // Every non-fallback id experienced the whole call's latency; the
  // fallback Gets observe their own.
  const std::int64_t elapsed = latency_watch.ElapsedNanos();
  std::size_t fallbacks = 0;
  for (const Miss& miss : misses) {
    if (miss.fallback) ++fallbacks;
  }
  for (std::size_t i = fallbacks; i < ids.size(); ++i) {
    RGPD_METRIC_OBSERVE("dbfs.get.latency_ns", elapsed);
  }
  for (const Miss& miss : misses) {
    if (miss.fallback) out[miss.slot] = Get(caller, miss.id);
  }
  return out;
}

std::vector<Result<membrane::Membrane>> Dbfs::GetMembraneMany(
    sentinel::Domain caller, const std::vector<RecordId>& ids) const {
  std::vector<Result<membrane::Membrane>> out;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out.push_back(Internal("GetMembraneMany slot not filled"));
  }
  struct Miss {
    std::size_t slot = 0;
    RecordId id = 0;
    RecordLoc loc;
    std::uint64_t gen = 0;
    int bucket = 0;
    std::size_t pos = 0;
    bool pending = false;
    bool fallback = false;
  };
  std::vector<Miss> misses;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const RecordId id = ids[i];
    if (Status gate =
            Gate(caller, sentinel::Operation::kRead,
                 "membrane record=" + std::to_string(id));
        !gate.ok()) {
      out[i] = std::move(gate);
      continue;
    }
    if (record_cache_ != nullptr) {
      if (auto hit = record_cache_->Lookup(id, /*need_row=*/false)) {
        RGPD_METRIC_COUNT("cache.record.hit");
        out[i] = std::move(hit->membrane);
        continue;
      }
      RGPD_METRIC_COUNT("cache.record.miss");
    }
    Miss miss;
    miss.slot = i;
    miss.id = id;
    misses.push_back(std::move(miss));
  }
  if (!misses.empty()) {
    std::array<std::vector<inodefs::InodeId>, 2> want;
    for (Miss& miss : misses) {
      Result<RecordLoc> loc = Locate(miss.id);
      if (!loc.ok()) {
        out[miss.slot] = loc.status();
        continue;
      }
      miss.loc = std::move(*loc);
      miss.gen =
          ShardGen(miss.loc.subject_id).load(std::memory_order_acquire);
      if (miss.gen % 2 != 0) {
        miss.fallback = true;
        continue;
      }
      miss.bucket =
          miss.loc.store_id == 1 && sensitive_store_ != nullptr ? 1 : 0;
      miss.pos = want[miss.bucket].size();
      want[miss.bucket].push_back(miss.loc.membrane_inode);
      miss.pending = true;
    }
    std::array<std::vector<Result<Bytes>>, 2> got;
    if (!want[0].empty()) got[0] = store_->ReadAllBatch(want[0]);
    if (!want[1].empty()) got[1] = sensitive_store_->ReadAllBatch(want[1]);
    for (Miss& miss : misses) {
      if (!miss.pending) continue;
      if (ShardGen(miss.loc.subject_id).load(std::memory_order_acquire) !=
          miss.gen) {
        miss.fallback = true;
        continue;
      }
      const Result<Bytes>& membrane_bytes = got[miss.bucket][miss.pos];
      if (!membrane_bytes.ok()) {
        miss.fallback = true;
        continue;
      }
      Result<membrane::Membrane> m =
          membrane::Membrane::Deserialize(*membrane_bytes);
      if (!m.ok()) {
        miss.fallback = true;
        continue;
      }
      if (record_cache_ != nullptr) {
        std::lock_guard<metrics::OrderedMutex> shard_lock(
            SubjectShard(miss.loc.subject_id));
        if (ShardGen(miss.loc.subject_id)
                .load(std::memory_order_acquire) == miss.gen) {
          FillRecordCache(miss.id, miss.loc, *m, /*row=*/nullptr);
        }
      }
      out[miss.slot] = std::move(*m);
    }
  }
  for (const Miss& miss : misses) {
    if (miss.fallback) out[miss.slot] = GetMembrane(caller, miss.id);
  }
  return out;
}

Status Dbfs::UpdateRow(sentinel::Domain caller, RecordId id,
                       const db::Row& row) {
  RGPD_METRIC_COUNT("dbfs.update.count");
  RGPD_METRIC_SCOPED_LATENCY("dbfs.update.latency_ns");
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kWrite,
                            "record=" + std::to_string(id)));
  std::shared_lock<metrics::OrderedSharedMutex> schema_lock(schema_mu_);
  RGPD_ASSIGN_OR_RETURN(RecordLoc loc, Locate(id));
  std::lock_guard<metrics::OrderedMutex> shard_lock(
      SubjectShard(loc.subject_id));
  RGPD_ASSIGN_OR_RETURN(loc, Locate(id));
  if (loc.erased) {
    return Erased("record " + std::to_string(id) + " was erased");
  }
  CacheMutationGuard cache_guard(*this, loc.subject_id, id);
  const auto type_it = types_.find(loc.type_name);
  if (type_it == types_.end()) {
    return Corruption("record references unknown type");
  }
  RGPD_RETURN_IF_ERROR(type_it->second.schema.ValidateRow(row));
  inodefs::InodeStore* data_store = StoreById(loc.store_id);
  // Scrubbed truncate first: the superseded version must not linger.
  RGPD_RETURN_IF_ERROR(data_store->Truncate(loc.pd_inode, 0, /*scrub=*/true));
  return data_store->WriteAll(loc.pd_inode,
                              type_it->second.schema.EncodeRow(row));
}

Status Dbfs::UpdateMembrane(sentinel::Domain caller, RecordId id,
                            const membrane::Membrane& membrane) {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kWrite,
                            "membrane record=" + std::to_string(id)));
  RGPD_ASSIGN_OR_RETURN(RecordLoc loc, Locate(id));
  std::lock_guard<metrics::OrderedMutex> shard_lock(
      SubjectShard(loc.subject_id));
  RGPD_ASSIGN_OR_RETURN(loc, Locate(id));
  if (membrane.subject_id != loc.subject_id ||
      membrane.type_name != loc.type_name) {
    return FailedPrecondition(
        "membrane identity does not match the stored record");
  }
  CacheMutationGuard cache_guard(*this, loc.subject_id, id);
  RGPD_RETURN_IF_ERROR(StoreById(loc.store_id)
                           ->WriteAll(loc.membrane_inode,
                                      membrane.Serialize()));
  if (membrane.copy_group != loc.copy_group) {
    {
      std::lock_guard<metrics::OrderedSharedMutex> index_lock(index_mu_);
      RecordLoc* live = records_.Find(id);
      if (live != nullptr) live->copy_group = membrane.copy_group;
    }
    RGPD_ASSIGN_OR_RETURN(inodefs::InodeId root,
                          SubjectRootOf(loc.subject_id));
    RGPD_ASSIGN_OR_RETURN(std::vector<SubjectEntry> entries,
                          LoadSubjectRoot(root));
    for (SubjectEntry& e : entries) {
      if (e.record_id == id) e.copy_group = membrane.copy_group;
    }
    RGPD_RETURN_IF_ERROR(StoreSubjectRoot(root, entries));
  }
  return Status::Ok();
}

Status Dbfs::HardDelete(sentinel::Domain caller, RecordId id) {
  RGPD_METRIC_COUNT("dbfs.erase.count");
  RGPD_METRIC_SCOPED_LATENCY("dbfs.erase.latency_ns");
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kDelete,
                            "record=" + std::to_string(id)));
  RGPD_ASSIGN_OR_RETURN(RecordLoc loc, Locate(id));
  std::lock_guard<metrics::OrderedMutex> shard_lock(
      SubjectShard(loc.subject_id));
  RGPD_ASSIGN_OR_RETURN(loc, Locate(id));
  // Cache discipline for erasure (the "no post-erasure read from cache"
  // guarantee): entry dropped + generation bumped before this returns;
  // the scrubbed frees below invalidate the block-cache copies.
  CacheMutationGuard cache_guard(*this, loc.subject_id, id);
  RGPD_ASSIGN_OR_RETURN(inodefs::InodeId root, SubjectRootOf(loc.subject_id));
  {
    // One atomic group for the whole erasure: either the record stays
    // fully intact (crash before the group journal record) or it is
    // fully unlinked and scrubbed (replay finishes the checkpoint). No
    // crash point exposes a half-deleted record.
    inodefs::InodeStore::GroupCommitScope group(*store_);
    RGPD_ASSIGN_OR_RETURN(std::vector<SubjectEntry> entries,
                          LoadSubjectRoot(root));
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const SubjectEntry& e) {
                                   return e.record_id == id;
                                 }),
                  entries.end());
    RGPD_RETURN_IF_ERROR(StoreSubjectRoot(root, entries));
    // Scrubbed frees stage zeros for the record's blocks (journaled as
    // part of the group, so the in-journal history ends in zeros); the
    // journal scrubs then destroy the remaining plaintext history on
    // every store the record's bytes touched — BEFORE the group record
    // is appended, so the group itself survives the scrub.
    inodefs::InodeStore* data_store = StoreById(loc.store_id);
    RGPD_RETURN_IF_ERROR(data_store->FreeInode(loc.pd_inode, /*scrub=*/true));
    RGPD_RETURN_IF_ERROR(
        data_store->FreeInode(loc.membrane_inode, /*scrub=*/true));
    RGPD_RETURN_IF_ERROR(data_store->ScrubJournal());
    RGPD_RETURN_IF_ERROR(store_->ScrubJournal());
    RGPD_RETURN_IF_ERROR(group.Finish());
  }
  {
    std::lock_guard<metrics::OrderedSharedMutex> index_lock(index_mu_);
    records_.Erase(id);
  }
  return Status::Ok();
}

Status Dbfs::ReplaceWithEnvelope(sentinel::Domain caller, RecordId id,
                                 ByteSpan envelope) {
  RGPD_METRIC_COUNT("dbfs.erase.count");
  RGPD_METRIC_SCOPED_LATENCY("dbfs.erase.latency_ns");
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kErase,
                            "record=" + std::to_string(id)));
  RGPD_ASSIGN_OR_RETURN(RecordLoc loc, Locate(id));
  std::lock_guard<metrics::OrderedMutex> shard_lock(
      SubjectShard(loc.subject_id));
  RGPD_ASSIGN_OR_RETURN(loc, Locate(id));
  if (loc.erased) {
    return Erased("record " + std::to_string(id) + " already erased");
  }
  CacheMutationGuard cache_guard(*this, loc.subject_id, id);
  RGPD_ASSIGN_OR_RETURN(inodefs::InodeId root, SubjectRootOf(loc.subject_id));
  {
    // Atomic group (same reasoning as HardDelete): the record is either
    // still fully intact after a crash, or fully erased — never an
    // intermediate like "plaintext scrubbed but no envelope yet".
    inodefs::InodeStore::GroupCommitScope group(*store_);
    // Destroy the plaintext, keep only the authority-sealed envelope.
    inodefs::InodeStore* data_store = StoreById(loc.store_id);
    RGPD_RETURN_IF_ERROR(
        data_store->Truncate(loc.pd_inode, 0, /*scrub=*/true));
    RGPD_RETURN_IF_ERROR(data_store->WriteAll(loc.pd_inode, envelope));
    // Revoke every consent on the membrane: nothing may process this PD.
    RGPD_ASSIGN_OR_RETURN(Bytes membrane_bytes,
                          data_store->ReadAll(loc.membrane_inode));
    RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                          membrane::Membrane::Deserialize(membrane_bytes));
    for (auto& [purpose, consent] : m.consents) {
      consent = membrane::Consent::None();
    }
    ++m.version;
    RGPD_RETURN_IF_ERROR(
        data_store->WriteAll(loc.membrane_inode, m.Serialize()));

    RGPD_ASSIGN_OR_RETURN(std::vector<SubjectEntry> entries,
                          LoadSubjectRoot(root));
    for (SubjectEntry& e : entries) {
      if (e.record_id == id) e.erased = true;
    }
    RGPD_RETURN_IF_ERROR(StoreSubjectRoot(root, entries));
    // Destroy the journal history that still holds plaintext, on both
    // stores (the primary journaled the subject-root rewrite too) —
    // before the group record appends, so the group survives the scrub.
    RGPD_RETURN_IF_ERROR(data_store->ScrubJournal());
    RGPD_RETURN_IF_ERROR(store_->ScrubJournal());
    RGPD_RETURN_IF_ERROR(group.Finish());
  }
  {
    std::lock_guard<metrics::OrderedSharedMutex> index_lock(index_mu_);
    RecordLoc* live = records_.Find(id);
    if (live != nullptr) live->erased = true;
  }
  return Status::Ok();
}

Result<Bytes> Dbfs::GetEnvelope(sentinel::Domain caller, RecordId id) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "envelope record=" + std::to_string(id)));
  RGPD_ASSIGN_OR_RETURN(RecordLoc loc, Locate(id));
  std::lock_guard<metrics::OrderedMutex> shard_lock(
      SubjectShard(loc.subject_id));
  RGPD_ASSIGN_OR_RETURN(loc, Locate(id));
  if (!loc.erased) {
    return FailedPrecondition("record " + std::to_string(id) +
                              " is not erased; no envelope");
  }
  return StoreById(loc.store_id)->ReadAll(loc.pd_inode);
}

std::size_t Dbfs::record_count() const {
  std::shared_lock<metrics::OrderedSharedMutex> lock(index_mu_);
  return records_.size();
}

std::size_t Dbfs::subject_count() const {
  std::shared_lock<metrics::OrderedSharedMutex> lock(index_mu_);
  return subjects_.size();
}

// ---- queries ---------------------------------------------------------------------

Result<std::vector<RecordId>> Dbfs::RecordsOfType(
    sentinel::Domain caller, std::string_view type) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "scan type=" + std::string(type)));
  return RecordsOfTypeUngated(type);
}

Result<std::vector<RecordId>> Dbfs::RecordsOfTypeUngated(
    std::string_view type) const {
  std::shared_lock<metrics::OrderedSharedMutex> schema_lock(schema_mu_);
  const auto type_it = types_.find(type);
  if (type_it == types_.end()) {
    return NotFound("no type: " + std::string(type));
  }
  // Walk the schema tree's subject-index log; entries for records that
  // were since deleted are filtered against the live index.
  RGPD_ASSIGN_OR_RETURN(Bytes log,
                        store_->ReadAll(type_it->second.subject_index_inode));
  ByteReader r(log);
  std::vector<RecordId> out;
  std::shared_lock<metrics::OrderedSharedMutex> index_lock(index_mu_);
  while (!r.exhausted()) {
    RGPD_ASSIGN_OR_RETURN(RecordId id, r.GetU64());
    RGPD_ASSIGN_OR_RETURN(SubjectId subject, r.GetU64());
    (void)subject;
    if (records_.Contains(id)) out.push_back(id);
  }
  return out;
}

Result<std::vector<RecordId>> Dbfs::RecordsOfSubject(
    sentinel::Domain caller, SubjectId subject) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "scan subject=" + std::to_string(subject)));
  // Shard lock keeps the subject's root log stable while we read it.
  std::lock_guard<metrics::OrderedMutex> shard_lock(SubjectShard(subject));
  const Result<inodefs::InodeId> root = SubjectRootOf(subject);
  if (!root.ok()) {
    if (root.status().code() == StatusCode::kNotFound) {
      return std::vector<RecordId>{};
    }
    return root.status();
  }
  RGPD_ASSIGN_OR_RETURN(std::vector<SubjectEntry> entries,
                        LoadSubjectRoot(root.value()));
  std::vector<RecordId> out;
  out.reserve(entries.size());
  for (const SubjectEntry& e : entries) out.push_back(e.record_id);
  return out;
}

Result<std::vector<SubjectId>> Dbfs::SubjectsAfter(sentinel::Domain caller,
                                                   SubjectId after,
                                                   std::size_t limit) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "subject scan after=" + std::to_string(after)));
  return SubjectsAfterUngated(after, limit);
}

Result<std::vector<SubjectId>> Dbfs::SubjectsAfterUngated(
    SubjectId after, std::size_t limit) const {
  std::vector<SubjectId> out;
  if (limit == 0) return out;
  std::shared_lock<metrics::OrderedSharedMutex> index_lock(index_mu_);
  for (auto it = subjects_.upper_bound(after);
       it != subjects_.end() && out.size() < limit; ++it) {
    out.push_back(it->first);
  }
  return out;
}

Result<std::vector<RecordId>> Dbfs::CopyGroupMembers(
    sentinel::Domain caller, std::uint64_t group) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "copy_group=" + std::to_string(group)));
  return CopyGroupMembersUngated(group);
}

Result<std::vector<RecordId>> Dbfs::CopyGroupMembersUngated(
    std::uint64_t group) const {
  std::vector<RecordId> out;
  std::shared_lock<metrics::OrderedSharedMutex> index_lock(index_mu_);
  records_.ForEach([&](const RecordId& id, const RecordLoc& loc) {
    if (loc.copy_group == group) out.push_back(id);
    return true;
  });
  return out;
}

Result<Dbfs::SensitivityReport> Dbfs::ReportSensitivity(
    sentinel::Domain caller) const {
  // Schema-level metadata, not PD content: the sysadmin may read it.
  RGPD_RETURN_IF_ERROR(
      Gate(caller, sentinel::Operation::kReadSchema, "sensitivity report"));
  return ReportSensitivityUngated();
}

Result<Dbfs::SensitivityReport> Dbfs::ReportSensitivityUngated() const {
  SensitivityReport report;
  Status failure = Status::Ok();
  std::shared_lock<metrics::OrderedSharedMutex> schema_lock(schema_mu_);
  std::shared_lock<metrics::OrderedSharedMutex> index_lock(index_mu_);
  records_.ForEach([&](const RecordId&, const RecordLoc& loc) {
    const auto type_it = types_.find(loc.type_name);
    if (type_it == types_.end()) {
      failure = Corruption("record references unknown type");
      return false;
    }
    const auto level = type_it->second.decl.sensitivity;
    ++report.by_level[static_cast<std::size_t>(level)];
    if (level == membrane::Sensitivity::kHigh) {
      ++report.high_by_type[loc.type_name];
    }
    return true;
  });
  RGPD_RETURN_IF_ERROR(failure);
  return report;
}

Result<SubjectExport> Dbfs::ExportSubject(sentinel::Domain caller,
                                          SubjectId subject) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kExport,
                            "subject=" + std::to_string(subject)));
  RGPD_ASSIGN_OR_RETURN(std::vector<RecordId> ids,
                        RecordsOfSubject(caller, subject));
  SubjectExport out;
  out.subject_id = subject;
  out.records.reserve(ids.size());
  for (RecordId id : ids) {
    Result<PdRecord> record = Get(caller, id);
    if (!record.ok()) {
      // A record may be hard-deleted between the listing above and this
      // read; the export simply omits it.
      if (record.status().code() == StatusCode::kNotFound) continue;
      return record.status();
    }
    out.records.push_back(std::move(record).value());
  }
  return out;
}

}  // namespace rgpdos::dbfs
