// Decoded-record cache — level 2 of the PD read-path caching stack.
//
// Caches the DECODED form of a record (membrane + row) keyed by record
// id, so the hot Get/GetMembrane paths skip the inode reads and the
// deserialisation entirely. Staleness is impossible by construction, not
// by luck: validity is tied to a per-subject-shard GENERATION counter
// maintained seqlock-style —
//
//   * Every Dbfs mutation of a subject's PD (consent grant/withdraw,
//     rectification, erasure, TTL expiry — they all funnel through
//     UpdateRow / UpdateMembrane / HardDelete / ReplaceWithEnvelope)
//     holds the subject's shard mutex and brackets the store writes with
//     BeginMutation (generation -> odd) ... EndMutation (-> even),
//     erasing the record's cache entry in between, BEFORE the mutation
//     is acknowledged to its caller.
//   * Every fill happens under the same shard mutex and stamps the entry
//     with the generation it observed (always even: an odd value would
//     mean a concurrent mutator holds the shard mutex we hold).
//   * A lookup takes NO subject lock: it copies the entry out, re-reads
//     the generation and serves the hit only if it equals the entry's
//     stamp. An in-flight mutation (odd) or any completed one (advanced)
//     misses, and the reader falls back to the locked slow path.
//
// Hence: once a consent withdrawal has returned to its caller, no later
// lookup anywhere can serve the pre-withdrawal membrane — the acknowledged
// generation bump invalidates every older stamp. Generations only grow,
// so there is no ABA.
//
// Entry storage is LRU-sharded by record id under rank-kDbfsRecordCache
// mutexes (below the subject shards, so fills and erasures nest inside
// them; purely in-memory, no IO ever happens under a cache lock).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/schema.hpp"
#include "membrane/membrane.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::dbfs {

using RecordId = std::uint64_t;
using SubjectId = std::uint64_t;

class RecordCache {
 public:
  struct Entry {
    SubjectId subject_id = 0;
    std::string type_name;
    membrane::Membrane membrane;
    db::Row row;
    bool has_row = false;  ///< false: membrane-only fill (GetMembrane)
    bool erased = false;
    std::uint64_t generation = 0;  ///< subject-shard generation at fill
  };

  /// `generation_shards` MUST equal the owner's subject-shard count: the
  /// begin/end protocol relies on "same generation shard => same subject
  /// shard mutex", so a fill can never observe an odd generation.
  RecordCache(std::size_t capacity, std::size_t generation_shards);

  /// Current generation of a subject's shard (acquire: pairs with the
  /// release in EndMutation, so a reader that sees the post-mutation
  /// value also sees the entry erased).
  [[nodiscard]] std::uint64_t generation(SubjectId subject) const {
    return generations_[subject % generations_.size()].load(
        std::memory_order_acquire);
  }

  /// Mutation bracket — caller holds the subject's shard mutex.
  void BeginMutation(SubjectId subject) {
    generations_[subject % generations_.size()].fetch_add(
        1, std::memory_order_release);
  }
  void EndMutation(SubjectId subject) {
    generations_[subject % generations_.size()].fetch_add(
        1, std::memory_order_release);
  }

  /// Lock-free with respect to subject shards: returns a validated copy
  /// or nothing. `need_row` demands a full fill (membrane-only entries
  /// miss) unless the record is erased (erased records have no row).
  [[nodiscard]] std::optional<Entry> Lookup(RecordId id, bool need_row) const;

  /// Fill — caller holds the subject's shard mutex and has stamped
  /// `entry.generation = generation(entry.subject_id)`. A membrane-only
  /// fill never downgrades a same-generation full entry.
  void Insert(RecordId id, Entry entry);

  /// Drop one record's entry (mutators, between Begin/EndMutation).
  void Erase(RecordId id);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const {
    return per_shard_capacity_ * shards_.size();
  }

 private:
  using LruList = std::list<std::pair<RecordId, Entry>>;
  struct Shard {
    mutable metrics::OrderedMutex mu{metrics::LockRank::kDbfsRecordCache,
                                     "dbfs.record_cache"};
    LruList lru;  ///< front = most recently used
    std::unordered_map<RecordId, LruList::iterator> map;
  };
  static constexpr std::size_t kEntryShards = 8;

  [[nodiscard]] Shard& ShardFor(RecordId id) const {
    return shards_[id % shards_.size()];
  }

  std::size_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;
  mutable std::vector<std::atomic<std::uint64_t>> generations_;
};

}  // namespace rgpdos::dbfs
