#include "dbfs/sharded_dbfs.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"

namespace rgpdos::dbfs {

namespace {

Status CheckTopology(const std::vector<inodefs::InodeStore*>& stores,
                     const std::vector<inodefs::InodeStore*>& sensitive) {
  if (stores.empty()) {
    return InvalidArgument("ShardedDbfs needs at least one store");
  }
  for (inodefs::InodeStore* s : stores) {
    if (s == nullptr) return InvalidArgument("null shard store");
  }
  if (!sensitive.empty() && sensitive.size() != stores.size()) {
    return InvalidArgument(
        "sensitive store count must match shard count (or be empty)");
  }
  return Status::Ok();
}

}  // namespace

Status ShardedDbfs::Gate(sentinel::Domain caller, sentinel::Operation op,
                         std::string detail) const {
  sentinel::AccessRequest request;
  request.subject = caller;
  request.object = sentinel::Domain::kDbfs;
  request.op = op;
  request.detail = std::move(detail);
  Status status = sentinel_->Enforce(request);
  if (!status.ok()) {
    RGPD_METRIC_COUNT("dbfs.denied.count");
  }
  return status;
}

Result<std::unique_ptr<ShardedDbfs>> ShardedDbfs::Format(
    const std::vector<inodefs::InodeStore*>& stores,
    sentinel::Sentinel* sentinel, const Clock* clock,
    const std::vector<inodefs::InodeStore*>& sensitive_stores) {
  RGPD_RETURN_IF_ERROR(CheckTopology(stores, sensitive_stores));
  const std::uint64_t n = stores.size();
  std::vector<std::unique_ptr<Dbfs>> shards;
  shards.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    inodefs::InodeStore* sens =
        sensitive_stores.empty() ? nullptr : sensitive_stores[i];
    RGPD_ASSIGN_OR_RETURN(
        std::unique_ptr<Dbfs> shard,
        Dbfs::Format(stores[i], sentinel, clock, sens, IdAllocation{i, n}));
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedDbfs>(
      new ShardedDbfs(std::move(shards), sentinel));
}

Result<std::unique_ptr<ShardedDbfs>> ShardedDbfs::Mount(
    const std::vector<inodefs::InodeStore*>& stores,
    sentinel::Sentinel* sentinel, const Clock* clock,
    const std::vector<inodefs::InodeStore*>& sensitive_stores) {
  RGPD_RETURN_IF_ERROR(CheckTopology(stores, sensitive_stores));
  const std::uint64_t n = stores.size();
  std::vector<std::unique_ptr<Dbfs>> shards;
  shards.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    inodefs::InodeStore* sens =
        sensitive_stores.empty() ? nullptr : sensitive_stores[i];
    RGPD_ASSIGN_OR_RETURN(
        std::unique_ptr<Dbfs> shard,
        Dbfs::Mount(stores[i], sentinel, clock, sens, IdAllocation{i, n}));
    shards.push_back(std::move(shard));
  }
  // Type-catalog reconciliation: CreateType replicates to shards in
  // order, so a crash can leave a suffix of shards without the newest
  // type. Re-apply the union (idempotent; types are never dropped).
  // Boot-time single-threaded, so reading shard catalogs directly is
  // safe (ShardedDbfs is a friend of Dbfs).
  for (std::uint64_t src = 0; src < n; ++src) {
    for (const auto& [name, entry] : shards[src]->types_) {
      for (std::uint64_t dst = 0; dst < n; ++dst) {
        if (dst == src || shards[dst]->types_.count(name) != 0) continue;
        RGPD_RETURN_IF_ERROR(shards[dst]->CreateTypeUngated(entry.decl));
      }
    }
  }
  return std::unique_ptr<ShardedDbfs>(
      new ShardedDbfs(std::move(shards), sentinel));
}

// ---- schema tree ----------------------------------------------------------

Status ShardedDbfs::CreateType(sentinel::Domain caller,
                               const dsl::TypeDecl& decl) {
  RGPD_RETURN_IF_ERROR(
      Gate(caller, sentinel::Operation::kCreate, "type=" + decl.name));
  for (const std::unique_ptr<Dbfs>& shard : shards_) {
    RGPD_RETURN_IF_ERROR(shard->CreateTypeUngated(decl));
  }
  return Status::Ok();
}

Result<const dsl::TypeDecl*> ShardedDbfs::GetType(
    sentinel::Domain caller, std::string_view name) const {
  // Catalog is replicated; shard 0 answers (and gates) for everyone.
  return shards_.front()->GetType(caller, name);
}

std::vector<std::string> ShardedDbfs::TypeNames() const {
  return shards_.front()->TypeNames();
}

// ---- record surface -------------------------------------------------------

Result<RecordId> ShardedDbfs::Put(sentinel::Domain caller, SubjectId subject,
                                  std::string_view type_name,
                                  const db::Row& row,
                                  membrane::Membrane membrane) {
  return ShardFor(subject).Put(caller, subject, type_name, row,
                               std::move(membrane));
}

Result<PdRecord> ShardedDbfs::Get(sentinel::Domain caller,
                                  RecordId id) const {
  return ShardForRecord(id).Get(caller, id);
}

Result<membrane::Membrane> ShardedDbfs::GetMembrane(sentinel::Domain caller,
                                                    RecordId id) const {
  return ShardForRecord(id).GetMembrane(caller, id);
}

namespace {
/// Group a batch by owning shard, run `call` once per shard with that
/// shard's ids, and scatter each shard's in-order results back to the
/// original slots.
template <typename T, typename Call>
std::vector<Result<T>> FanOutBatch(std::size_t shard_count,
                                   const std::vector<RecordId>& ids,
                                   Call call) {
  std::vector<Result<T>> out;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out.push_back(Internal("batch slot not filled"));
  }
  std::vector<std::vector<RecordId>> shard_ids(shard_count);
  std::vector<std::vector<std::size_t>> shard_slots(shard_count);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    // Record ids are minted from per-shard arithmetic progressions, so
    // the owner is recoverable without a directory lookup. Id 0 is
    // never minted; route it anywhere for its NotFound verdict.
    const std::size_t owner =
        ids[i] == 0 ? 0 : static_cast<std::size_t>((ids[i] - 1) % shard_count);
    shard_ids[owner].push_back(ids[i]);
    shard_slots[owner].push_back(i);
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (shard_ids[s].empty()) continue;
    std::vector<Result<T>> part = call(s, shard_ids[s]);
    for (std::size_t k = 0; k < shard_slots[s].size(); ++k) {
      out[shard_slots[s][k]] = std::move(part[k]);
    }
  }
  return out;
}
}  // namespace

std::vector<Result<PdRecord>> ShardedDbfs::GetMany(
    sentinel::Domain caller, const std::vector<RecordId>& ids) const {
  return FanOutBatch<PdRecord>(
      shards_.size(), ids,
      [&](std::size_t s, const std::vector<RecordId>& part) {
        return shards_[s]->GetMany(caller, part);
      });
}

std::vector<Result<membrane::Membrane>> ShardedDbfs::GetMembraneMany(
    sentinel::Domain caller, const std::vector<RecordId>& ids) const {
  return FanOutBatch<membrane::Membrane>(
      shards_.size(), ids,
      [&](std::size_t s, const std::vector<RecordId>& part) {
        return shards_[s]->GetMembraneMany(caller, part);
      });
}

Status ShardedDbfs::UpdateRow(sentinel::Domain caller, RecordId id,
                              const db::Row& row) {
  return ShardForRecord(id).UpdateRow(caller, id, row);
}

Status ShardedDbfs::UpdateMembrane(sentinel::Domain caller, RecordId id,
                                   const membrane::Membrane& membrane) {
  return ShardForRecord(id).UpdateMembrane(caller, id, membrane);
}

Status ShardedDbfs::HardDelete(sentinel::Domain caller, RecordId id) {
  return ShardForRecord(id).HardDelete(caller, id);
}

Status ShardedDbfs::ReplaceWithEnvelope(sentinel::Domain caller, RecordId id,
                                        ByteSpan envelope) {
  return ShardForRecord(id).ReplaceWithEnvelope(caller, id, envelope);
}

Result<Bytes> ShardedDbfs::GetEnvelope(sentinel::Domain caller,
                                       RecordId id) const {
  return ShardForRecord(id).GetEnvelope(caller, id);
}

// ---- queries --------------------------------------------------------------

Result<std::vector<RecordId>> ShardedDbfs::RecordsOfType(
    sentinel::Domain caller, std::string_view type) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "scan type=" + std::string(type)));
  std::vector<RecordId> out;
  for (const std::unique_ptr<Dbfs>& shard : shards_) {
    RGPD_ASSIGN_OR_RETURN(std::vector<RecordId> ids,
                          shard->RecordsOfTypeUngated(type));
    out.insert(out.end(), ids.begin(), ids.end());
  }
  // Per-shard logs are append-ordered (ascending ids); the merged view
  // is globally ascending so callers see a deterministic order.
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<RecordId>> ShardedDbfs::RecordsOfSubject(
    sentinel::Domain caller, SubjectId subject) const {
  return ShardFor(subject).RecordsOfSubject(caller, subject);
}

Result<std::vector<SubjectId>> ShardedDbfs::SubjectsAfter(
    sentinel::Domain caller, SubjectId after, std::size_t limit) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "subject scan after=" + std::to_string(after)));
  std::vector<SubjectId> merged;
  if (limit == 0) return merged;
  // Each shard returns its own first `limit` subjects > after; merging
  // and truncating yields exactly the globally-first `limit` (a subject
  // lives on exactly one shard, so there are no duplicates to collapse).
  for (const std::unique_ptr<Dbfs>& shard : shards_) {
    RGPD_ASSIGN_OR_RETURN(std::vector<SubjectId> page,
                          shard->SubjectsAfterUngated(after, limit));
    merged.insert(merged.end(), page.begin(), page.end());
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > limit) merged.resize(limit);
  return merged;
}

Result<std::vector<RecordId>> ShardedDbfs::CopyGroupMembers(
    sentinel::Domain caller, std::uint64_t group) const {
  RGPD_RETURN_IF_ERROR(Gate(caller, sentinel::Operation::kRead,
                            "copy_group=" + std::to_string(group)));
  std::vector<RecordId> out;
  // Copy groups span shards: a membrane minted on one shard propagates
  // to copies of OTHER subjects' records via UpdateMembrane.
  for (const std::unique_ptr<Dbfs>& shard : shards_) {
    RGPD_ASSIGN_OR_RETURN(std::vector<RecordId> ids,
                          shard->CopyGroupMembersUngated(group));
    out.insert(out.end(), ids.begin(), ids.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<SubjectExport> ShardedDbfs::ExportSubject(sentinel::Domain caller,
                                                 SubjectId subject) const {
  return ShardFor(subject).ExportSubject(caller, subject);
}

// ---- decoded-record cache -------------------------------------------------

void ShardedDbfs::EnableRecordCache(std::size_t capacity) {
  const std::size_t per_shard =
      capacity == 0 ? 0
                    : std::max<std::size_t>(
                          1, (capacity + shards_.size() - 1) / shards_.size());
  for (const std::unique_ptr<Dbfs>& shard : shards_) {
    shard->EnableRecordCache(per_shard);
  }
}

// ---- stats ----------------------------------------------------------------

Result<DbfsApi::SensitivityReport> ShardedDbfs::ReportSensitivity(
    sentinel::Domain caller) const {
  RGPD_RETURN_IF_ERROR(
      Gate(caller, sentinel::Operation::kReadSchema, "sensitivity report"));
  SensitivityReport total;
  for (const std::unique_ptr<Dbfs>& shard : shards_) {
    RGPD_ASSIGN_OR_RETURN(SensitivityReport part,
                          shard->ReportSensitivityUngated());
    for (std::size_t level = 0; level < total.by_level.size(); ++level) {
      total.by_level[level] += part.by_level[level];
    }
    for (const auto& [type, count] : part.high_by_type) {
      total.high_by_type[type] += count;
    }
  }
  return total;
}

std::size_t ShardedDbfs::record_count() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Dbfs>& shard : shards_) {
    total += shard->record_count();
  }
  return total;
}

std::size_t ShardedDbfs::subject_count() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Dbfs>& shard : shards_) {
    total += shard->subject_count();
  }
  return total;
}

}  // namespace rgpdos::dbfs
