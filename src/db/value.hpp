// Typed values — the cells of DBFS rows.
//
// "Every PD has a precise type" (paper §2): rgpdOS stores personal data as
// typed rows, not opaque bytes. Value is the dynamic cell type shared by
// the DBFS record codec, the baseline engine, and the DED's view
// projection.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace rgpdos::db {

enum class ValueType : std::uint8_t {
  kNull = 0,
  kInt,
  kDouble,
  kBool,
  kString,
  kBytes,
};

std::string_view ValueTypeName(ValueType type);
/// Parse a DSL type name ("int", "double", "bool", "string", "bytes").
Result<ValueType> ValueTypeFromName(std::string_view name);

class Value {
 public:
  Value() = default;  // null
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(Bytes v) : data_(std::move(v)) {}
  static Value Null() { return Value(); }

  [[nodiscard]] ValueType type() const;
  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::monostate>(data_);
  }

  // Checked accessors.
  [[nodiscard]] Result<std::int64_t> AsInt() const;
  [[nodiscard]] Result<double> AsDouble() const;
  [[nodiscard]] Result<bool> AsBool() const;
  [[nodiscard]] Result<std::string> AsString() const;
  [[nodiscard]] Result<Bytes> AsBytes() const;

  /// Render for exports and debugging ("42", "\"alice\"", "null", ...).
  [[nodiscard]] std::string ToDisplayString() const;

  void Encode(ByteWriter& w) const;
  static Result<Value> Decode(ByteReader& r);

  /// Total order across types (type tag first, then value) so values can
  /// key ordered indexes.
  [[nodiscard]] int Compare(const Value& other) const;
  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::variant<std::monostate, std::int64_t, double, bool, std::string,
               Bytes>
      data_;
};

}  // namespace rgpdos::db
