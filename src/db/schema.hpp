// Table schemas and the row codec.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"

namespace rgpdos::db {

/// Value constraints attached to a field (GDPR Art. 5(1)(d), accuracy:
/// reject implausible PD at the write boundary instead of storing it).
struct FieldConstraints {
  std::optional<std::int64_t> min_value;  ///< int fields
  std::optional<std::int64_t> max_value;  ///< int fields
  std::optional<std::uint64_t> max_len;   ///< string/bytes fields
  bool not_empty = false;                 ///< string/bytes fields

  [[nodiscard]] bool Any() const {
    return min_value || max_value || max_len || not_empty;
  }
  friend bool operator==(const FieldConstraints&,
                         const FieldConstraints&) = default;
};

struct FieldDef {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = false;
  FieldConstraints constraints;
};

/// Row = one value per schema field, in declaration order.
using Row = std::vector<Value>;

class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<FieldDef> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<FieldDef>& fields() const {
    return fields_;
  }
  [[nodiscard]] std::size_t field_count() const { return fields_.size(); }

  /// Index of a field by name.
  [[nodiscard]] Result<std::size_t> FieldIndex(std::string_view name) const;
  [[nodiscard]] bool HasField(std::string_view name) const;

  /// Check a row's arity and cell types against the schema.
  [[nodiscard]] Status ValidateRow(const Row& row) const;

  /// Serialise a (validated) row.
  [[nodiscard]] Bytes EncodeRow(const Row& row) const;
  [[nodiscard]] Result<Row> DecodeRow(ByteSpan bytes) const;

  /// Schema persistence (stored in the DBFS schema tree / catalog file).
  void Encode(ByteWriter& w) const;
  static Result<Schema> Decode(ByteReader& r);

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::string name_;
  std::vector<FieldDef> fields_;
};

}  // namespace rgpdos::db
