// In-memory B+tree — the ordered index of the table engine and of DBFS's
// schema-tree subject lists. Written from scratch; Validate() exposes the
// structural invariants so the test suite can property-check random
// workloads (insert/erase interleavings) against a reference std::map.
#pragma once

#include <algorithm>
#include <cassert>
#include <utility>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace rgpdos::db {

/// B+tree mapping K -> V. `Order` is the fan-out: internal nodes hold at
/// most Order children; leaves hold at most Order entries. Keys must be
/// totally ordered by `Less`.
template <typename K, typename V, std::size_t Order = 64,
          typename Less = std::less<K>>
class BPlusTree {
  static_assert(Order >= 4, "Order must be at least 4");

 public:
  BPlusTree() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Insert or overwrite. Returns true if the key was new.
  bool Insert(const K& key, V value) {
    if (!root_) {
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      leaf->keys.push_back(key);
      leaf->values.push_back(std::move(value));
      root_ = std::move(leaf);
      size_ = 1;
      return true;
    }
    bool inserted = false;
    InsertRec(root_.get(), key, std::move(value), inserted);
    if (root_->Overfull()) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      auto [sep, right] = Split(root_.get());
      new_root->keys.push_back(sep);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(right));
      root_ = std::move(new_root);
    }
    if (inserted) ++size_;
    return inserted;
  }

  /// Pointer to the stored value, or nullptr.
  [[nodiscard]] const V* Find(const K& key) const {
    const Node* node = root_.get();
    while (node != nullptr) {
      if (node->leaf) {
        const auto it = std::lower_bound(node->keys.begin(),
                                         node->keys.end(), key, less_);
        if (it != node->keys.end() && !less_(key, *it)) {
          return &node->values[std::size_t(it - node->keys.begin())];
        }
        return nullptr;
      }
      node = node->children[ChildSlot(node, key)].get();
    }
    return nullptr;
  }
  [[nodiscard]] V* Find(const K& key) {
    return const_cast<V*>(std::as_const(*this).Find(key));
  }
  [[nodiscard]] bool Contains(const K& key) const {
    return Find(key) != nullptr;
  }

  /// Remove a key. Returns true if it was present.
  bool Erase(const K& key) {
    if (!root_) return false;
    const bool erased = EraseRec(root_.get(), key);
    if (erased) --size_;
    if (!root_->leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children.front());
    } else if (root_->leaf && root_->keys.empty()) {
      root_.reset();
    }
    return erased;
  }

  /// In-order visit of every (key, value). Return false to stop early.
  void ForEach(const std::function<bool(const K&, const V&)>& fn) const {
    ForEachRec(root_.get(), fn);
  }

  /// Visit keys in [lo, hi] inclusive.
  void ForEachInRange(const K& lo, const K& hi,
                      const std::function<bool(const K&, const V&)>& fn) const {
    auto visit = [&](const K& k, const V& v) {
      if (less_(hi, k)) return false;
      if (!less_(k, lo)) return fn(k, v);
      return true;
    };
    ForEachRec(root_.get(), visit);
  }

  /// Smallest key, if any.
  [[nodiscard]] std::optional<K> MinKey() const {
    const Node* node = root_.get();
    if (!node) return std::nullopt;
    while (!node->leaf) node = node->children.front().get();
    return node->keys.front();
  }

  /// Structural invariant check for property tests. Returns true iff:
  /// every leaf is at the same depth; every non-root node holds at least
  /// MinKeys() entries; keys are sorted; separators bound their subtrees.
  [[nodiscard]] bool Validate() const {
    if (!root_) return size_ == 0;
    int depth = -1;
    std::size_t counted = 0;
    const bool ok = ValidateRec(root_.get(), /*is_root=*/true, 0, depth,
                                nullptr, nullptr, counted);
    return ok && counted == size_;
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<K> keys;
    std::vector<V> values;                        // leaf only
    std::vector<std::unique_ptr<Node>> children;  // internal only

    [[nodiscard]] bool Overfull() const { return keys.size() > Order; }
  };

  static constexpr std::size_t MinKeys() { return Order / 2; }

  [[nodiscard]] std::size_t ChildSlot(const Node* node, const K& key) const {
    // Child i holds keys < keys[i]; the upper_bound gives the slot whose
    // subtree may contain `key`.
    const auto it =
        std::upper_bound(node->keys.begin(), node->keys.end(), key, less_);
    return std::size_t(it - node->keys.begin());
  }

  /// Split an overfull node; returns (separator key, right sibling).
  std::pair<K, std::unique_ptr<Node>> Split(Node* node) {
    auto right = std::make_unique<Node>(node->leaf);
    const std::size_t mid = node->keys.size() / 2;
    K separator = node->keys[mid];
    if (node->leaf) {
      right->keys.assign(node->keys.begin() + mid, node->keys.end());
      right->values.assign(std::make_move_iterator(node->values.begin() + mid),
                           std::make_move_iterator(node->values.end()));
      node->keys.resize(mid);
      node->values.resize(mid);
      // For leaves the separator is the first key of the right node.
      separator = right->keys.front();
    } else {
      // The separator moves up; it is not kept in either half.
      right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
      right->children.assign(
          std::make_move_iterator(node->children.begin() + mid + 1),
          std::make_move_iterator(node->children.end()));
      node->keys.resize(mid);
      node->children.resize(mid + 1);
    }
    return {separator, std::move(right)};
  }

  void InsertRec(Node* node, const K& key, V value, bool& inserted) {
    if (node->leaf) {
      const auto it = std::lower_bound(node->keys.begin(), node->keys.end(),
                                       key, less_);
      const std::size_t idx = std::size_t(it - node->keys.begin());
      if (it != node->keys.end() && !less_(key, *it)) {
        node->values[idx] = std::move(value);  // overwrite
        inserted = false;
        return;
      }
      node->keys.insert(it, key);
      node->values.insert(node->values.begin() +
                              static_cast<std::ptrdiff_t>(idx),
                          std::move(value));
      inserted = true;
      return;
    }
    const std::size_t slot = ChildSlot(node, key);
    Node* child = node->children[slot].get();
    InsertRec(child, key, std::move(value), inserted);
    if (child->Overfull()) {
      auto [sep, right] = Split(child);
      node->keys.insert(node->keys.begin() +
                            static_cast<std::ptrdiff_t>(slot),
                        sep);
      node->children.insert(node->children.begin() +
                                static_cast<std::ptrdiff_t>(slot + 1),
                            std::move(right));
    }
  }

  bool EraseRec(Node* node, const K& key) {
    if (node->leaf) {
      const auto it = std::lower_bound(node->keys.begin(), node->keys.end(),
                                       key, less_);
      if (it == node->keys.end() || less_(key, *it)) return false;
      const std::size_t idx = std::size_t(it - node->keys.begin());
      node->keys.erase(it);
      node->values.erase(node->values.begin() +
                         static_cast<std::ptrdiff_t>(idx));
      return true;
    }
    const std::size_t slot = ChildSlot(node, key);
    Node* child = node->children[slot].get();
    const bool erased = EraseRec(child, key);
    if (child->keys.size() < MinKeys()) {
      Rebalance(node, slot);
    }
    return erased;
  }

  /// Restore the fill invariant of children[slot] by borrowing from a
  /// sibling or merging with one.
  void Rebalance(Node* parent, std::size_t slot) {
    Node* child = parent->children[slot].get();
    Node* left = slot > 0 ? parent->children[slot - 1].get() : nullptr;
    Node* right = slot + 1 < parent->children.size()
                      ? parent->children[slot + 1].get()
                      : nullptr;

    if (left != nullptr && left->keys.size() > MinKeys()) {
      // Borrow the left sibling's last entry.
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->values.insert(child->values.begin(),
                             std::move(left->values.back()));
        left->keys.pop_back();
        left->values.pop_back();
        parent->keys[slot - 1] = child->keys.front();
      } else {
        child->keys.insert(child->keys.begin(), parent->keys[slot - 1]);
        parent->keys[slot - 1] = left->keys.back();
        left->keys.pop_back();
        child->children.insert(child->children.begin(),
                               std::move(left->children.back()));
        left->children.pop_back();
      }
      return;
    }
    if (right != nullptr && right->keys.size() > MinKeys()) {
      // Borrow the right sibling's first entry.
      if (child->leaf) {
        child->keys.push_back(right->keys.front());
        child->values.push_back(std::move(right->values.front()));
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        parent->keys[slot] = right->keys.front();
      } else {
        child->keys.push_back(parent->keys[slot]);
        parent->keys[slot] = right->keys.front();
        right->keys.erase(right->keys.begin());
        child->children.push_back(std::move(right->children.front()));
        right->children.erase(right->children.begin());
      }
      return;
    }

    // Merge with a sibling (absorb right into left).
    const std::size_t left_slot = left != nullptr ? slot - 1 : slot;
    Node* a = parent->children[left_slot].get();
    Node* b = parent->children[left_slot + 1].get();
    if (a->leaf) {
      a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
      a->values.insert(a->values.end(),
                       std::make_move_iterator(b->values.begin()),
                       std::make_move_iterator(b->values.end()));
    } else {
      a->keys.push_back(parent->keys[left_slot]);
      a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
      a->children.insert(a->children.end(),
                         std::make_move_iterator(b->children.begin()),
                         std::make_move_iterator(b->children.end()));
    }
    parent->keys.erase(parent->keys.begin() +
                       static_cast<std::ptrdiff_t>(left_slot));
    parent->children.erase(parent->children.begin() +
                           static_cast<std::ptrdiff_t>(left_slot + 1));
  }

  bool ForEachRec(const Node* node,
                  const std::function<bool(const K&, const V&)>& fn) const {
    if (node == nullptr) return true;
    if (node->leaf) {
      for (std::size_t i = 0; i < node->keys.size(); ++i) {
        if (!fn(node->keys[i], node->values[i])) return false;
      }
      return true;
    }
    for (std::size_t i = 0; i < node->children.size(); ++i) {
      if (!ForEachRec(node->children[i].get(), fn)) return false;
    }
    return true;
  }

  bool ValidateRec(const Node* node, bool is_root, int depth,
                   int& leaf_depth, const K* lower, const K* upper,
                   std::size_t& counted) const {
    // Fill bounds.
    if (!is_root && node->keys.size() < MinKeys()) return false;
    if (node->keys.size() > Order) return false;
    // Sorted keys, within (lower, upper].
    for (std::size_t i = 0; i < node->keys.size(); ++i) {
      if (i > 0 && !less_(node->keys[i - 1], node->keys[i])) return false;
      if (lower != nullptr && less_(node->keys[i], *lower)) return false;
      if (upper != nullptr && !less_(node->keys[i], *upper)) return false;
    }
    if (node->leaf) {
      if (node->values.size() != node->keys.size()) return false;
      if (leaf_depth == -1) leaf_depth = depth;
      if (leaf_depth != depth) return false;
      counted += node->keys.size();
      return true;
    }
    if (node->children.size() != node->keys.size() + 1) return false;
    for (std::size_t i = 0; i < node->children.size(); ++i) {
      const K* child_lower = i == 0 ? lower : &node->keys[i - 1];
      const K* child_upper = i == node->keys.size() ? upper : &node->keys[i];
      if (!ValidateRec(node->children[i].get(), false, depth + 1, leaf_depth,
                       child_lower, child_upper, counted)) {
        return false;
      }
    }
    return true;
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  Less less_{};
};

}  // namespace rgpdos::db
