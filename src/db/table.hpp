// Append-only table engine over an inodefs file.
//
// Storage format: a log of framed records; updates append new versions
// and deletes append tombstones. A B+tree keyed by row id maps to the
// latest live version's file location. This is the engine under the
// Fig-2 baseline (GDPR at the DB level in userspace): note that Delete()
// only appends a tombstone and Compact() rewrites the live set without
// scrubbing old bytes — exactly the class of behaviour that leaks
// "deleted" PD through lower layers.
#pragma once

#include <functional>
#include <string>

#include "db/btree.hpp"
#include "db/schema.hpp"
#include "inodefs/inode_store.hpp"

namespace rgpdos::db {

using RowId = std::uint64_t;

class Table {
 public:
  /// Create a fresh table stored in inode `file` (already allocated,
  /// kind kFile, empty).
  static Result<Table> Create(inodefs::InodeStore* store,
                              inodefs::InodeId file, Schema schema);

  /// Open an existing table file: replays the record log to rebuild the
  /// row index.
  static Result<Table> Open(inodefs::InodeStore* store, inodefs::InodeId file,
                            Schema schema);

  /// Append a new row; returns its id.
  Result<RowId> Insert(const Row& row);
  /// Latest live version of a row.
  Result<Row> Get(RowId id) const;
  /// Append a new version.
  Status Update(RowId id, const Row& row);
  /// Append a tombstone. The old bytes stay in the log.
  Status Delete(RowId id);

  /// Visit every live row in id order; return false to stop.
  Status Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  /// Rewrite the log keeping only live versions. Frees the old content
  /// without scrubbing (baseline semantics).
  Status Compact();

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] std::size_t live_count() const { return index_.size(); }
  [[nodiscard]] std::uint64_t log_bytes() const { return end_offset_; }
  [[nodiscard]] inodefs::InodeId file() const { return file_; }

 private:
  struct Location {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;  // payload length
  };

  Table(inodefs::InodeStore* store, inodefs::InodeId file, Schema schema)
      : store_(store), file_(file), schema_(std::move(schema)) {}

  Status AppendRecord(RowId id, bool tombstone, ByteSpan payload,
                      Location* location);
  Status ReplayLog();

  inodefs::InodeStore* store_;  // borrowed
  inodefs::InodeId file_;
  Schema schema_;
  BPlusTree<RowId, Location> index_;
  RowId next_id_ = 1;
  std::uint64_t end_offset_ = 0;
};

}  // namespace rgpdos::db
