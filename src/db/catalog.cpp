#include "db/catalog.hpp"

namespace rgpdos::db {

Result<Catalog> Catalog::Create(inodefs::FileSystem* fs, std::string dir) {
  if (!fs->Exists(dir)) {
    RGPD_RETURN_IF_ERROR(fs->Mkdir(dir));
  }
  Catalog catalog(fs, std::move(dir));
  RGPD_RETURN_IF_ERROR(catalog.PersistMeta());
  return catalog;
}

Result<Catalog> Catalog::Open(inodefs::FileSystem* fs, std::string dir) {
  Catalog catalog(fs, std::move(dir));
  RGPD_ASSIGN_OR_RETURN(Bytes meta, fs->ReadFile(catalog.MetaPath()));
  ByteReader r(meta);
  RGPD_ASSIGN_OR_RETURN(std::uint64_t count, r.GetVarint());
  for (std::uint64_t i = 0; i < count; ++i) {
    RGPD_ASSIGN_OR_RETURN(Schema schema, Schema::Decode(r));
    RGPD_ASSIGN_OR_RETURN(inodefs::InodeId file,
                          fs->Lookup(catalog.TablePath(schema.name())));
    RGPD_ASSIGN_OR_RETURN(Table table,
                          Table::Open(&fs->store(), file, schema));
    catalog.tables_.emplace(schema.name(),
                            std::make_unique<Table>(std::move(table)));
  }
  return catalog;
}

Status Catalog::PersistMeta() {
  ByteWriter w;
  w.PutVarint(tables_.size());
  for (const auto& [name, table] : tables_) {
    table->schema().Encode(w);
  }
  return fs_->WriteFile(MetaPath(), w.buffer());
}

Result<Table*> Catalog::CreateTable(const Schema& schema) {
  if (tables_.count(schema.name()) != 0) {
    return AlreadyExists("table exists: " + schema.name());
  }
  RGPD_ASSIGN_OR_RETURN(inodefs::InodeId file,
                        fs_->CreateFile(TablePath(schema.name())));
  RGPD_ASSIGN_OR_RETURN(Table table, Table::Create(&fs_->store(), file,
                                                   schema));
  auto [it, unused] = tables_.emplace(
      schema.name(), std::make_unique<Table>(std::move(table)));
  RGPD_RETURN_IF_ERROR(PersistMeta());
  return it->second.get();
}

Result<Table*> Catalog::GetTable(std::string_view name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound("no table: " + std::string(name));
  }
  return it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Catalog::DropTable(std::string_view name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound("no table: " + std::string(name));
  }
  RGPD_RETURN_IF_ERROR(fs_->Unlink(TablePath(name), /*scrub=*/false));
  tables_.erase(it);
  return PersistMeta();
}

}  // namespace rgpdos::db
