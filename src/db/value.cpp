#include "db/value.hpp"

#include "common/hex.hpp"

namespace rgpdos::db {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kBool: return "bool";
    case ValueType::kString: return "string";
    case ValueType::kBytes: return "bytes";
  }
  return "?";
}

Result<ValueType> ValueTypeFromName(std::string_view name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "bool") return ValueType::kBool;
  if (name == "string") return ValueType::kString;
  if (name == "bytes") return ValueType::kBytes;
  return InvalidArgument("unknown value type: " + std::string(name));
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

Result<std::int64_t> Value::AsInt() const {
  if (const auto* v = std::get_if<std::int64_t>(&data_)) return *v;
  return InvalidArgument("value is not an int");
}

Result<double> Value::AsDouble() const {
  if (const auto* v = std::get_if<double>(&data_)) return *v;
  return InvalidArgument("value is not a double");
}

Result<bool> Value::AsBool() const {
  if (const auto* v = std::get_if<bool>(&data_)) return *v;
  return InvalidArgument("value is not a bool");
}

Result<std::string> Value::AsString() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  return InvalidArgument("value is not a string");
}

Result<Bytes> Value::AsBytes() const {
  if (const auto* v = std::get_if<Bytes>(&data_)) return *v;
  return InvalidArgument("value is not bytes");
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return std::to_string(*AsInt());
    case ValueType::kDouble: return std::to_string(*AsDouble());
    case ValueType::kBool: return *AsBool() ? "true" : "false";
    case ValueType::kString: return "\"" + *AsString() + "\"";
    case ValueType::kBytes: return "0x" + HexEncode(*AsBytes());
  }
  return "?";
}

void Value::Encode(ByteWriter& w) const {
  w.PutU8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull: break;
    case ValueType::kInt: w.PutI64(*AsInt()); break;
    case ValueType::kDouble: w.PutF64(*AsDouble()); break;
    case ValueType::kBool: w.PutBool(*AsBool()); break;
    case ValueType::kString: w.PutString(*AsString()); break;
    case ValueType::kBytes: w.PutBytes(*AsBytes()); break;
  }
}

Result<Value> Value::Decode(ByteReader& r) {
  RGPD_ASSIGN_OR_RETURN(std::uint8_t tag, r.GetU8());
  if (tag > static_cast<std::uint8_t>(ValueType::kBytes)) {
    return Corruption("value has unknown type tag");
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull: return Value();
    case ValueType::kInt: {
      RGPD_ASSIGN_OR_RETURN(std::int64_t v, r.GetI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      RGPD_ASSIGN_OR_RETURN(double v, r.GetF64());
      return Value(v);
    }
    case ValueType::kBool: {
      RGPD_ASSIGN_OR_RETURN(bool v, r.GetBool());
      return Value(v);
    }
    case ValueType::kString: {
      RGPD_ASSIGN_OR_RETURN(std::string v, r.GetString());
      return Value(std::move(v));
    }
    case ValueType::kBytes: {
      RGPD_ASSIGN_OR_RETURN(Bytes v, r.GetBytes());
      return Value(std::move(v));
    }
  }
  return Corruption("unreachable");
}

int Value::Compare(const Value& other) const {
  if (type() != other.type()) {
    return type() < other.type() ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull: return 0;
    case ValueType::kInt: {
      const auto a = *AsInt();
      const auto b = *other.AsInt();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kDouble: {
      const auto a = *AsDouble();
      const auto b = *other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kBool: {
      const auto a = *AsBool();
      const auto b = *other.AsBool();
      return a == b ? 0 : (!a ? -1 : 1);
    }
    case ValueType::kString: {
      const auto a = *AsString();
      const auto b = *other.AsString();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kBytes: {
      const auto a = *AsBytes();
      const auto b = *other.AsBytes();
      if (a == b) return 0;
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end())
                 ? -1
                 : 1;
    }
  }
  return 0;
}

}  // namespace rgpdos::db
