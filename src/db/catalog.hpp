// Catalog: named tables with persisted schemas, stored in a directory of
// the file-granularity filesystem. Used by the Fig-2 baseline engine.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/table.hpp"
#include "inodefs/filesystem.hpp"

namespace rgpdos::db {

class Catalog {
 public:
  /// Create a fresh catalog rooted at `dir` (created if missing).
  static Result<Catalog> Create(inodefs::FileSystem* fs, std::string dir);
  /// Open an existing catalog: loads schemas and replays table logs.
  static Result<Catalog> Open(inodefs::FileSystem* fs, std::string dir);

  Result<Table*> CreateTable(const Schema& schema);
  Result<Table*> GetTable(std::string_view name);
  [[nodiscard]] std::vector<std::string> TableNames() const;
  /// Drop a table: removes the file via plain unlink — freed blocks keep
  /// their contents (baseline semantics).
  Status DropTable(std::string_view name);

 private:
  Catalog(inodefs::FileSystem* fs, std::string dir)
      : fs_(fs), dir_(std::move(dir)) {}

  [[nodiscard]] std::string MetaPath() const { return dir_ + "/catalog.meta"; }
  [[nodiscard]] std::string TablePath(std::string_view name) const {
    return dir_ + "/" + std::string(name) + ".tbl";
  }
  Status PersistMeta();

  inodefs::FileSystem* fs_;  // borrowed
  std::string dir_;
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace rgpdos::db
