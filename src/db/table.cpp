#include "db/table.hpp"

namespace rgpdos::db {

namespace {
// Record frame: len u32 | rowid u64 | tombstone u8 | payload[len]
constexpr std::size_t kFrameHeader = 4 + 8 + 1;
}  // namespace

Result<Table> Table::Create(inodefs::InodeStore* store, inodefs::InodeId file,
                            Schema schema) {
  RGPD_ASSIGN_OR_RETURN(inodefs::Inode inode, store->GetInode(file));
  if (inode.size != 0) {
    return FailedPrecondition("table file is not empty; use Open()");
  }
  return Table(store, file, std::move(schema));
}

Result<Table> Table::Open(inodefs::InodeStore* store, inodefs::InodeId file,
                          Schema schema) {
  Table table(store, file, std::move(schema));
  RGPD_RETURN_IF_ERROR(table.ReplayLog());
  return table;
}

Status Table::ReplayLog() {
  RGPD_ASSIGN_OR_RETURN(Bytes log, store_->ReadAll(file_));
  std::uint64_t offset = 0;
  while (offset + kFrameHeader <= log.size()) {
    ByteReader r(ByteSpan(log.data() + offset, log.size() - offset));
    const std::uint32_t len = *r.GetU32();
    const RowId id = *r.GetU64();
    const std::uint8_t tombstone = *r.GetU8();
    if (offset + kFrameHeader + len > log.size()) {
      return Corruption("table log ends mid-record");
    }
    if (tombstone != 0) {
      index_.Erase(id);
    } else {
      index_.Insert(id, Location{offset + kFrameHeader, len});
    }
    next_id_ = std::max(next_id_, id + 1);
    offset += kFrameHeader + len;
  }
  end_offset_ = offset;
  return Status::Ok();
}

Status Table::AppendRecord(RowId id, bool tombstone, ByteSpan payload,
                           Location* location) {
  ByteWriter w(kFrameHeader + payload.size());
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutU64(id);
  w.PutU8(tombstone ? 1 : 0);
  w.PutRaw(payload);
  RGPD_RETURN_IF_ERROR(store_->WriteAt(file_, end_offset_, w.buffer()));
  if (location != nullptr) {
    *location = Location{end_offset_ + kFrameHeader,
                         static_cast<std::uint32_t>(payload.size())};
  }
  end_offset_ += w.size();
  return Status::Ok();
}

Result<RowId> Table::Insert(const Row& row) {
  RGPD_RETURN_IF_ERROR(schema_.ValidateRow(row));
  const RowId id = next_id_++;
  const Bytes payload = schema_.EncodeRow(row);
  Location loc;
  RGPD_RETURN_IF_ERROR(AppendRecord(id, false, payload, &loc));
  index_.Insert(id, loc);
  return id;
}

Result<Row> Table::Get(RowId id) const {
  const Location* loc = index_.Find(id);
  if (loc == nullptr) return NotFound("no row " + std::to_string(id));
  RGPD_ASSIGN_OR_RETURN(Bytes payload,
                        store_->ReadAt(file_, loc->offset, loc->length));
  return schema_.DecodeRow(payload);
}

Status Table::Update(RowId id, const Row& row) {
  if (!index_.Contains(id)) {
    return NotFound("no row " + std::to_string(id));
  }
  RGPD_RETURN_IF_ERROR(schema_.ValidateRow(row));
  const Bytes payload = schema_.EncodeRow(row);
  Location loc;
  RGPD_RETURN_IF_ERROR(AppendRecord(id, false, payload, &loc));
  index_.Insert(id, loc);
  return Status::Ok();
}

Status Table::Delete(RowId id) {
  if (!index_.Contains(id)) {
    return NotFound("no row " + std::to_string(id));
  }
  RGPD_RETURN_IF_ERROR(AppendRecord(id, true, ByteSpan{}, nullptr));
  index_.Erase(id);
  return Status::Ok();
}

Status Table::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  Status failure = Status::Ok();
  index_.ForEach([&](const RowId& id, const Location& loc) {
    auto payload = store_->ReadAt(file_, loc.offset, loc.length);
    if (!payload.ok()) {
      failure = payload.status();
      return false;
    }
    auto row = schema_.DecodeRow(*payload);
    if (!row.ok()) {
      failure = row.status();
      return false;
    }
    return fn(id, *row);
  });
  return failure;
}

Status Table::Compact() {
  // Collect live rows, truncate (no scrub), re-append.
  std::vector<std::pair<RowId, Bytes>> live;
  live.reserve(index_.size());
  Status failure = Status::Ok();
  index_.ForEach([&](const RowId& id, const Location& loc) {
    auto payload = store_->ReadAt(file_, loc.offset, loc.length);
    if (!payload.ok()) {
      failure = payload.status();
      return false;
    }
    live.emplace_back(id, std::move(*payload));
    return true;
  });
  RGPD_RETURN_IF_ERROR(failure);
  RGPD_RETURN_IF_ERROR(store_->Truncate(file_, 0, /*scrub=*/false));
  end_offset_ = 0;
  index_ = {};
  for (auto& [id, payload] : live) {
    Location loc;
    RGPD_RETURN_IF_ERROR(AppendRecord(id, false, payload, &loc));
    index_.Insert(id, loc);
  }
  return Status::Ok();
}

}  // namespace rgpdos::db
