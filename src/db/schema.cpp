#include "db/schema.hpp"

namespace rgpdos::db {

Result<std::size_t> Schema::FieldIndex(std::string_view name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return NotFound("no field '" + std::string(name) + "' in type '" + name_ +
                  "'");
}

bool Schema::HasField(std::string_view name) const {
  return FieldIndex(name).ok();
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != fields_.size()) {
    return InvalidArgument("row arity " + std::to_string(row.size()) +
                           " != schema arity " +
                           std::to_string(fields_.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (!fields_[i].nullable) {
        return InvalidArgument("field '" + fields_[i].name +
                               "' is not nullable");
      }
      continue;
    }
    if (row[i].type() != fields_[i].type) {
      return InvalidArgument(
          "field '" + fields_[i].name + "' expects " +
          std::string(ValueTypeName(fields_[i].type)) + ", got " +
          std::string(ValueTypeName(row[i].type())));
    }
    const FieldConstraints& c = fields_[i].constraints;
    if (!c.Any()) continue;
    if (fields_[i].type == ValueType::kInt) {
      const std::int64_t v = *row[i].AsInt();
      if (c.min_value && v < *c.min_value) {
        return InvalidArgument("field '" + fields_[i].name + "' value " +
                               std::to_string(v) + " below min " +
                               std::to_string(*c.min_value));
      }
      if (c.max_value && v > *c.max_value) {
        return InvalidArgument("field '" + fields_[i].name + "' value " +
                               std::to_string(v) + " above max " +
                               std::to_string(*c.max_value));
      }
    } else if (fields_[i].type == ValueType::kString ||
               fields_[i].type == ValueType::kBytes) {
      const std::size_t len =
          fields_[i].type == ValueType::kString
              ? (*row[i].AsString()).size()
              : (*row[i].AsBytes()).size();
      if (c.not_empty && len == 0) {
        return InvalidArgument("field '" + fields_[i].name +
                               "' must not be empty");
      }
      if (c.max_len && len > *c.max_len) {
        return InvalidArgument("field '" + fields_[i].name + "' length " +
                               std::to_string(len) + " exceeds max_len " +
                               std::to_string(*c.max_len));
      }
    }
  }
  return Status::Ok();
}

Bytes Schema::EncodeRow(const Row& row) const {
  ByteWriter w;
  w.PutVarint(row.size());
  for (const Value& v : row) v.Encode(w);
  return w.Take();
}

Result<Row> Schema::DecodeRow(ByteSpan bytes) const {
  ByteReader r(bytes);
  RGPD_ASSIGN_OR_RETURN(std::uint64_t count, r.GetVarint());
  if (count != fields_.size()) {
    return Corruption("stored row arity does not match schema");
  }
  Row row;
  row.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RGPD_ASSIGN_OR_RETURN(Value v, Value::Decode(r));
    row.push_back(std::move(v));
  }
  return row;
}

void Schema::Encode(ByteWriter& w) const {
  w.PutString(name_);
  w.PutVarint(fields_.size());
  for (const FieldDef& f : fields_) {
    w.PutString(f.name);
    w.PutU8(static_cast<std::uint8_t>(f.type));
    w.PutBool(f.nullable);
    const FieldConstraints& c = f.constraints;
    std::uint8_t mask = 0;
    if (c.min_value) mask |= 1;
    if (c.max_value) mask |= 2;
    if (c.max_len) mask |= 4;
    if (c.not_empty) mask |= 8;
    w.PutU8(mask);
    if (c.min_value) w.PutI64(*c.min_value);
    if (c.max_value) w.PutI64(*c.max_value);
    if (c.max_len) w.PutU64(*c.max_len);
  }
}

Result<Schema> Schema::Decode(ByteReader& r) {
  RGPD_ASSIGN_OR_RETURN(std::string name, r.GetString());
  RGPD_ASSIGN_OR_RETURN(std::uint64_t count, r.GetVarint());
  std::vector<FieldDef> fields;
  fields.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FieldDef f;
    RGPD_ASSIGN_OR_RETURN(f.name, r.GetString());
    RGPD_ASSIGN_OR_RETURN(std::uint8_t type, r.GetU8());
    if (type > static_cast<std::uint8_t>(ValueType::kBytes)) {
      return Corruption("schema field has unknown type tag");
    }
    f.type = static_cast<ValueType>(type);
    RGPD_ASSIGN_OR_RETURN(f.nullable, r.GetBool());
    RGPD_ASSIGN_OR_RETURN(std::uint8_t mask, r.GetU8());
    if (mask & 1) {
      RGPD_ASSIGN_OR_RETURN(std::int64_t v, r.GetI64());
      f.constraints.min_value = v;
    }
    if (mask & 2) {
      RGPD_ASSIGN_OR_RETURN(std::int64_t v, r.GetI64());
      f.constraints.max_value = v;
    }
    if (mask & 4) {
      RGPD_ASSIGN_OR_RETURN(std::uint64_t v, r.GetU64());
      f.constraints.max_len = v;
    }
    f.constraints.not_empty = (mask & 8) != 0;
    fields.push_back(std::move(f));
  }
  return Schema(std::move(name), std::move(fields));
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.name_ != b.name_ || a.fields_.size() != b.fields_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.fields_.size(); ++i) {
    if (a.fields_[i].name != b.fields_[i].name ||
        a.fields_[i].type != b.fields_[i].type ||
        a.fields_[i].nullable != b.fields_[i].nullable ||
        !(a.fields_[i].constraints == b.fields_[i].constraints)) {
      return false;
    }
  }
  return true;
}

}  // namespace rgpdos::db
