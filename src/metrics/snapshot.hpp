// Point-in-time export of the metrics registry: plain data plus text and
// JSON renderings. The JSON form is the interchange format of the repo's
// perf trajectory — benches write it as BENCH_*.json artifacts, CI
// uploads them, and FromJson() reads them back (round-trip tested), so
// tooling can diff runs without scraping stdout.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace rgpdos::metrics {

struct HistogramSnapshot {
  std::string name;
  std::vector<std::uint64_t> bounds;   ///< upper bucket bounds (le)
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Linear-interpolated quantile estimate (q in [0,1]); 0 when empty.
  [[nodiscard]] double ApproxQuantile(double q) const;
  /// Mean observation; 0 when empty.
  [[nodiscard]] double Mean() const {
    return count == 0 ? 0.0 : double(sum) / double(count);
  }

  friend bool operator==(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) {
    return a.name == b.name && a.bounds == b.bounds &&
           a.buckets == b.buckets && a.count == b.count && a.sum == b.sum;
  }
};

struct SpanSnapshot {
  std::string component;
  std::string name;
  std::int64_t start_us = 0;     ///< wall-clock micros at span open
  std::int64_t duration_ns = 0;  ///< steady-clock span duration

  friend bool operator==(const SpanSnapshot& a, const SpanSnapshot& b) {
    return a.component == b.component && a.name == b.name &&
           a.start_us == b.start_us && a.duration_ns == b.duration_ns;
  }
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<SpanSnapshot> spans;

  /// Lookup helpers (linear; snapshots are small). Null when absent.
  [[nodiscard]] const std::uint64_t* FindCounter(std::string_view name) const;
  [[nodiscard]] const std::int64_t* FindGauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* FindHistogram(
      std::string_view name) const;

  /// One line per metric, stable order — human-oriented.
  [[nodiscard]] std::string ToText() const;
  /// Machine-oriented JSON object (see FromJson for the schema).
  [[nodiscard]] std::string ToJson() const;
  /// Parse the exporter's own output. Tolerates unknown keys so older
  /// tooling can read artifacts from newer builds.
  static Result<MetricsSnapshot> FromJson(std::string_view json);

  friend bool operator==(const MetricsSnapshot& a, const MetricsSnapshot& b) {
    return a.counters == b.counters && a.gauges == b.gauges &&
           a.histograms == b.histograms && a.spans == b.spans;
  }
};

/// Minimal JSON string escaping for metric/component names.
[[nodiscard]] std::string JsonEscape(std::string_view s);

}  // namespace rgpdos::metrics
