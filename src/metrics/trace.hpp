// Scoped-span tracer with per-component sampling.
//
// A span is one timed region of the enforcement path (e.g. component
// "core", name "ded_execute"). Spans are SAMPLED — each component keeps
// a relaxed atomic sequence counter and records every Nth span — so the
// tracer can stay on in production-shaped benches without distorting
// them. Recorded spans land in a bounded ring buffer that the snapshot
// exporter drains into the JSON artifact.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/metrics.hpp"
#include "metrics/snapshot.hpp"

namespace rgpdos::metrics {

class Tracer {
 public:
  /// Per-component sampling state. Stable address for the process
  /// lifetime; call sites cache a pointer in a function-local static.
  struct Component {
    Component(Tracer* owner, std::string name, std::uint32_t every)
        : tracer(owner), component_name(std::move(name)), sample_every(every) {}

    /// True when this occurrence should be recorded (1-in-`sample_every`;
    /// 0 disables the component). One relaxed fetch_add per sampled-or-not
    /// span.
    bool Sample() {
      const std::uint32_t every =
          sample_every.load(std::memory_order_relaxed);
      if (every == 0) return false;
      return seq.fetch_add(1, std::memory_order_relaxed) % every == 0;
    }

    Tracer* tracer;
    const std::string component_name;
    std::atomic<std::uint32_t> sample_every;
    std::atomic<std::uint64_t> seq{0};
  };

  explicit Tracer(std::size_t capacity = 2048,
                  std::uint32_t default_sample_every = 1)
      : capacity_(capacity), default_sample_every_(default_sample_every) {}

  /// Registry of per-component state (slow path, mutex-protected).
  Component& GetComponent(std::string_view name);

  /// Change the sampling period of one component (0 = off).
  void SetSampleEvery(std::string_view component, std::uint32_t every);

  void Record(SpanSnapshot span);

  /// Recorded spans, oldest first (ring order).
  [[nodiscard]] std::vector<SpanSnapshot> Spans() const;
  void Clear();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::uint32_t default_sample_every_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Component>, std::less<>> components_;
  std::vector<SpanSnapshot> ring_;
  std::size_t next_ = 0;    // ring write head
  bool wrapped_ = false;
};

/// RAII span. Construct through RGPD_TRACE_SPAN; a null component
/// (metrics disabled) or a negative sampling decision skips the clocks.
class ScopedSpan {
 public:
  ScopedSpan(Tracer::Component* component, const char* name)
      : component_(component), name_(name) {
    if (component_ != nullptr && component_->Sample()) {
      sampled_ = true;
      start_ns_ = MonotonicNanos();
      start_us_ = WallMicros();
    }
  }
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Wall-clock microseconds since the Unix epoch.
  [[nodiscard]] static std::int64_t WallMicros();

 private:
  Tracer::Component* component_;
  const char* name_;
  bool sampled_ = false;
  std::int64_t start_ns_ = 0;
  std::int64_t start_us_ = 0;
};

/// Open a sampled span over the enclosing scope. Both arguments must be
/// string literals. Disabled cost: one relaxed atomic load.
#define RGPD_TRACE_SPAN(component, name)                                 \
  ::rgpdos::metrics::ScopedSpan RGPD_METRICS_CAT(rgpd_trace_span_,       \
                                                 __LINE__)(              \
      ::rgpdos::metrics::Enabled()                                       \
          ? []() -> ::rgpdos::metrics::Tracer::Component* {              \
              static ::rgpdos::metrics::Tracer::Component& rgpd_comp =   \
                  ::rgpdos::metrics::MetricsRegistry::Instance()         \
                      .tracer()                                          \
                      .GetComponent(component);                          \
              return &rgpd_comp;                                         \
            }()                                                          \
          : nullptr,                                                     \
      name)

}  // namespace rgpdos::metrics
