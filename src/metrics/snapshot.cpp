#include "metrics/snapshot.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/json.hpp"

namespace rgpdos::metrics {

// ---- lookup --------------------------------------------------------------------

const std::uint64_t* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const std::int64_t* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double HistogramSnapshot::ApproxQuantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * double(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (double(cumulative + in_bucket) >= target) {
      // Interpolate inside [lower, upper); the overflow bucket has no
      // upper bound, so report its lower edge.
      const double lower = i == 0 ? 0.0 : double(bounds[i - 1]);
      if (i >= bounds.size()) return lower;
      const double upper = double(bounds[i]);
      const double fraction =
          in_bucket == 0 ? 0.0
                         : (target - double(cumulative)) / double(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : double(bounds.back());
}

// ---- exporters -----------------------------------------------------------------

std::string JsonEscape(std::string_view s) {
  return rgpdos::JsonEscape(s);
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "gauge " << name << " " << value << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    out << "histogram " << h.name << " count=" << h.count << " sum=" << h.sum
        << " p50=" << static_cast<std::uint64_t>(h.ApproxQuantile(0.5))
        << " p99=" << static_cast<std::uint64_t>(h.ApproxQuantile(0.99))
        << "\n";
  }
  for (const SpanSnapshot& s : spans) {
    out << "span " << s.component << "." << s.name << " start_us="
        << s.start_us << " duration_ns=" << s.duration_ns << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(h.name)
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out << (i == 0 ? "" : ", ") << h.bounds[i];
    }
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << (i == 0 ? "" : ", ") << h.buckets[i];
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"spans\": [";
  first = true;
  for (const SpanSnapshot& s : spans) {
    out << (first ? "" : ",") << "\n    {\"component\": \""
        << JsonEscape(s.component) << "\", \"name\": \"" << JsonEscape(s.name)
        << "\", \"start_us\": " << s.start_us
        << ", \"duration_ns\": " << s.duration_ns << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

// ---- parser --------------------------------------------------------------------

namespace {

// Restricted JSON reader, sufficient for the exporter's own output plus
// unknown-key tolerance: objects, arrays, strings (with the escapes
// JsonEscape emits), integers, doubles, true/false/null.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Corruption(std::string("JSON: expected '") + c + "' at offset " +
                        std::to_string(pos_));
    }
    ++pos_;
    return Status::Ok();
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  Result<std::string> ParseString() {
    RGPD_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Corruption("JSON: truncated \\u escape");
            }
            const unsigned long code = std::strtoul(
                std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16);
            pos_ += 4;
            // Exporter only emits control characters this way.
            out += static_cast<char>(code & 0x7f);
            break;
          }
          default:
            return Corruption("JSON: unsupported escape");
        }
      } else {
        out += c;
      }
    }
    return Corruption("JSON: unterminated string");
  }

  Result<std::int64_t> ParseInt() {
    SkipWs();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Corruption("JSON: expected integer");
    return static_cast<std::int64_t>(
        std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(),
                     nullptr, 10));
  }

  Result<std::uint64_t> ParseUint() {
    SkipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Corruption("JSON: expected unsigned integer");
    return static_cast<std::uint64_t>(
        std::strtoull(std::string(text_.substr(start, pos_ - start)).c_str(),
                      nullptr, 10));
  }

  /// Skip any well-formed value (unknown-key tolerance).
  Status SkipValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Corruption("JSON: truncated value");
    const char c = text_[pos_];
    if (c == '"') return ParseString().status();
    if (c == '{') {
      ++pos_;
      if (Consume('}')) return Status::Ok();
      while (true) {
        RGPD_RETURN_IF_ERROR(ParseString().status());
        RGPD_RETURN_IF_ERROR(Expect(':'));
        RGPD_RETURN_IF_ERROR(SkipValue());
        if (Consume('}')) return Status::Ok();
        RGPD_RETURN_IF_ERROR(Expect(','));
      }
    }
    if (c == '[') {
      ++pos_;
      if (Consume(']')) return Status::Ok();
      while (true) {
        RGPD_RETURN_IF_ERROR(SkipValue());
        if (Consume(']')) return Status::Ok();
        RGPD_RETURN_IF_ERROR(Expect(','));
      }
    }
    // Scalar: number / true / false / null.
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return Status::Ok();
  }

  Status AtEnd() {
    SkipWs();
    if (pos_ != text_.size()) {
      return Corruption("JSON: trailing garbage at offset " +
                        std::to_string(pos_));
    }
    return Status::Ok();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<std::vector<std::uint64_t>> ParseUintArray(JsonCursor& cursor) {
  RGPD_RETURN_IF_ERROR(cursor.Expect('['));
  std::vector<std::uint64_t> out;
  if (cursor.Consume(']')) return out;
  while (true) {
    RGPD_ASSIGN_OR_RETURN(std::uint64_t v, cursor.ParseUint());
    out.push_back(v);
    if (cursor.Consume(']')) return out;
    RGPD_RETURN_IF_ERROR(cursor.Expect(','));
  }
}

Result<HistogramSnapshot> ParseHistogram(JsonCursor& cursor,
                                         std::string name) {
  HistogramSnapshot h;
  h.name = std::move(name);
  RGPD_RETURN_IF_ERROR(cursor.Expect('{'));
  if (cursor.Consume('}')) return h;
  while (true) {
    RGPD_ASSIGN_OR_RETURN(std::string key, cursor.ParseString());
    RGPD_RETURN_IF_ERROR(cursor.Expect(':'));
    if (key == "count") {
      RGPD_ASSIGN_OR_RETURN(h.count, cursor.ParseUint());
    } else if (key == "sum") {
      RGPD_ASSIGN_OR_RETURN(h.sum, cursor.ParseUint());
    } else if (key == "bounds") {
      RGPD_ASSIGN_OR_RETURN(h.bounds, ParseUintArray(cursor));
    } else if (key == "buckets") {
      RGPD_ASSIGN_OR_RETURN(h.buckets, ParseUintArray(cursor));
    } else {
      RGPD_RETURN_IF_ERROR(cursor.SkipValue());
    }
    if (cursor.Consume('}')) return h;
    RGPD_RETURN_IF_ERROR(cursor.Expect(','));
  }
}

Result<SpanSnapshot> ParseSpan(JsonCursor& cursor) {
  SpanSnapshot span;
  RGPD_RETURN_IF_ERROR(cursor.Expect('{'));
  if (cursor.Consume('}')) return span;
  while (true) {
    RGPD_ASSIGN_OR_RETURN(std::string key, cursor.ParseString());
    RGPD_RETURN_IF_ERROR(cursor.Expect(':'));
    if (key == "component") {
      RGPD_ASSIGN_OR_RETURN(span.component, cursor.ParseString());
    } else if (key == "name") {
      RGPD_ASSIGN_OR_RETURN(span.name, cursor.ParseString());
    } else if (key == "start_us") {
      RGPD_ASSIGN_OR_RETURN(span.start_us, cursor.ParseInt());
    } else if (key == "duration_ns") {
      RGPD_ASSIGN_OR_RETURN(span.duration_ns, cursor.ParseInt());
    } else {
      RGPD_RETURN_IF_ERROR(cursor.SkipValue());
    }
    if (cursor.Consume('}')) return span;
    RGPD_RETURN_IF_ERROR(cursor.Expect(','));
  }
}

}  // namespace

Result<MetricsSnapshot> MetricsSnapshot::FromJson(std::string_view json) {
  MetricsSnapshot snapshot;
  JsonCursor cursor(json);
  RGPD_RETURN_IF_ERROR(cursor.Expect('{'));
  if (cursor.Consume('}')) {
    RGPD_RETURN_IF_ERROR(cursor.AtEnd());
    return snapshot;
  }
  while (true) {
    RGPD_ASSIGN_OR_RETURN(std::string section, cursor.ParseString());
    RGPD_RETURN_IF_ERROR(cursor.Expect(':'));
    if (section == "counters" || section == "gauges") {
      RGPD_RETURN_IF_ERROR(cursor.Expect('{'));
      if (!cursor.Consume('}')) {
        while (true) {
          RGPD_ASSIGN_OR_RETURN(std::string name, cursor.ParseString());
          RGPD_RETURN_IF_ERROR(cursor.Expect(':'));
          if (section == "counters") {
            RGPD_ASSIGN_OR_RETURN(std::uint64_t v, cursor.ParseUint());
            snapshot.counters.emplace_back(std::move(name), v);
          } else {
            RGPD_ASSIGN_OR_RETURN(std::int64_t v, cursor.ParseInt());
            snapshot.gauges.emplace_back(std::move(name), v);
          }
          if (cursor.Consume('}')) break;
          RGPD_RETURN_IF_ERROR(cursor.Expect(','));
        }
      }
    } else if (section == "histograms") {
      RGPD_RETURN_IF_ERROR(cursor.Expect('{'));
      if (!cursor.Consume('}')) {
        while (true) {
          RGPD_ASSIGN_OR_RETURN(std::string name, cursor.ParseString());
          RGPD_RETURN_IF_ERROR(cursor.Expect(':'));
          RGPD_ASSIGN_OR_RETURN(HistogramSnapshot h,
                                ParseHistogram(cursor, std::move(name)));
          snapshot.histograms.push_back(std::move(h));
          if (cursor.Consume('}')) break;
          RGPD_RETURN_IF_ERROR(cursor.Expect(','));
        }
      }
    } else if (section == "spans") {
      RGPD_RETURN_IF_ERROR(cursor.Expect('['));
      if (!cursor.Consume(']')) {
        while (true) {
          RGPD_ASSIGN_OR_RETURN(SpanSnapshot span, ParseSpan(cursor));
          snapshot.spans.push_back(std::move(span));
          if (cursor.Consume(']')) break;
          RGPD_RETURN_IF_ERROR(cursor.Expect(','));
        }
      }
    } else {
      RGPD_RETURN_IF_ERROR(cursor.SkipValue());
    }
    if (cursor.Consume('}')) break;
    RGPD_RETURN_IF_ERROR(cursor.Expect(','));
  }
  RGPD_RETURN_IF_ERROR(cursor.AtEnd());
  return snapshot;
}

}  // namespace rgpdos::metrics
