#include "metrics/lock.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace rgpdos::metrics {

namespace lock_internal {
namespace {
// Ranks currently held by this thread, in acquisition order. Depth is a
// handful at most (one lock per layer), so a small vector beats anything
// clever.
thread_local std::vector<int> t_held_ranks;
}  // namespace

void CheckAcquire(int rank, const char* name) {
  if (!t_held_ranks.empty() && t_held_ranks.back() <= rank) {
    std::fprintf(stderr,
                 "rgpdos lock-order violation: acquiring '%s' (rank %d) while "
                 "holding rank %d; ranks must strictly decrease "
                 "(core -> sentinel -> dbfs -> inodefs -> blockdev)\n",
                 name, rank, t_held_ranks.back());
    std::abort();
  }
}

void PushRank(int rank) { t_held_ranks.push_back(rank); }

void PopRank(int rank) {
  // Unlocks are almost always LIFO; tolerate out-of-order release by
  // erasing the most recent matching entry.
  for (auto it = t_held_ranks.rbegin(); it != t_held_ranks.rend(); ++it) {
    if (*it == rank) {
      t_held_ranks.erase(std::next(it).base());
      return;
    }
  }
}

std::size_t HeldRankCount() { return t_held_ranks.size(); }

}  // namespace lock_internal

namespace {
PerThreadCounter* ContentionCounter(std::string_view name) {
  return &MetricsRegistry::Instance().GetPerThreadCounter(
      "lock.contention." + std::string(name));
}
PerThreadCounter* ContentionTotal() {
  return &MetricsRegistry::Instance().GetPerThreadCounter(
      "lock.contention.total");
}
}  // namespace

// ---- OrderedMutex -------------------------------------------------------

OrderedMutex::OrderedMutex(LockRank rank, std::string_view name)
    : rank_(rank),
      name_(name),
      contention_(ContentionCounter(name)),
      contention_total_(ContentionTotal()) {}

void OrderedMutex::lock() {
  const bool recursing =
      owner_.load(std::memory_order_relaxed) == std::this_thread::get_id();
  if (!recursing) {
    lock_internal::CheckAcquire(static_cast<int>(rank_), name_.c_str());
    if (!mu_.try_lock()) {
      if (Enabled()) {
        contention_->Inc();
        contention_total_->Inc();
      }
      mu_.lock();
    }
  } else {
    mu_.lock();  // recursive re-entry, cannot block
  }
  if (depth_++ == 0) {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    lock_internal::PushRank(static_cast<int>(rank_));
  }
}

bool OrderedMutex::try_lock() {
  const bool recursing =
      owner_.load(std::memory_order_relaxed) == std::this_thread::get_id();
  if (!recursing) {
    lock_internal::CheckAcquire(static_cast<int>(rank_), name_.c_str());
  }
  if (!mu_.try_lock()) return false;
  if (depth_++ == 0) {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    lock_internal::PushRank(static_cast<int>(rank_));
  }
  return true;
}

void OrderedMutex::unlock() {
  if (--depth_ == 0) {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    lock_internal::PopRank(static_cast<int>(rank_));
  }
  mu_.unlock();
}

// ---- OrderedSharedMutex -------------------------------------------------

OrderedSharedMutex::OrderedSharedMutex(LockRank rank, std::string_view name)
    : rank_(rank),
      name_(name),
      contention_(ContentionCounter(name)),
      contention_total_(ContentionTotal()) {}

void OrderedSharedMutex::lock() {
  lock_internal::CheckAcquire(static_cast<int>(rank_), name_.c_str());
  if (!mu_.try_lock()) {
    if (Enabled()) {
      contention_->Inc();
      contention_total_->Inc();
    }
    mu_.lock();
  }
  lock_internal::PushRank(static_cast<int>(rank_));
}

bool OrderedSharedMutex::try_lock() {
  lock_internal::CheckAcquire(static_cast<int>(rank_), name_.c_str());
  if (!mu_.try_lock()) return false;
  lock_internal::PushRank(static_cast<int>(rank_));
  return true;
}

void OrderedSharedMutex::unlock() {
  lock_internal::PopRank(static_cast<int>(rank_));
  mu_.unlock();
}

void OrderedSharedMutex::lock_shared() {
  lock_internal::CheckAcquire(static_cast<int>(rank_), name_.c_str());
  if (!mu_.try_lock_shared()) {
    if (Enabled()) {
      contention_->Inc();
      contention_total_->Inc();
    }
    mu_.lock_shared();
  }
  lock_internal::PushRank(static_cast<int>(rank_));
}

bool OrderedSharedMutex::try_lock_shared() {
  lock_internal::CheckAcquire(static_cast<int>(rank_), name_.c_str());
  if (!mu_.try_lock_shared()) return false;
  lock_internal::PushRank(static_cast<int>(rank_));
  return true;
}

void OrderedSharedMutex::unlock_shared() {
  lock_internal::PopRank(static_cast<int>(rank_));
  mu_.unlock_shared();
}

}  // namespace rgpdos::metrics
