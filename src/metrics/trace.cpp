#include "metrics/trace.hpp"

#include <chrono>

namespace rgpdos::metrics {

Tracer::Component& Tracer::GetComponent(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = components_.find(name);
  if (it == components_.end()) {
    it = components_
             .emplace(std::string(name),
                      std::make_unique<Component>(this, std::string(name),
                                                  default_sample_every_))
             .first;
  }
  return *it->second;
}

void Tracer::SetSampleEvery(std::string_view component, std::uint32_t every) {
  GetComponent(component)
      .sample_every.store(every, std::memory_order_relaxed);
}

void Tracer::Record(SpanSnapshot span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = std::move(span);
    next_ = (next_ + 1) % capacity_;
    wrapped_ = true;
  }
}

std::vector<SpanSnapshot> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<SpanSnapshot> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  for (auto& [name, component] : components_) {
    component->seq.store(0, std::memory_order_relaxed);
  }
}

std::int64_t ScopedSpan::WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

ScopedSpan::~ScopedSpan() {
  if (!sampled_) return;
  SpanSnapshot span;
  span.component = component_->component_name;
  span.name = name_;
  span.start_us = start_us_;
  span.duration_ns = MonotonicNanos() - start_ns_;
  component_->tracer->Record(std::move(span));
}

}  // namespace rgpdos::metrics
