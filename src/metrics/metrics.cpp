#include "metrics/metrics.hpp"

#include <algorithm>
#include <chrono>

#include "metrics/trace.hpp"

namespace rgpdos::metrics {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t ThreadIndex() {
  static std::atomic<std::size_t> next_index{0};
  thread_local const std::size_t index =
      next_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

// ---- Histogram ----------------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow when end()
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const std::vector<std::uint64_t>& LatencyBucketBoundsNs() {
  // 256 ns .. ~1.07 s in powers of two (23 bounds + overflow bucket).
  static const std::vector<std::uint64_t> kBounds = [] {
    std::vector<std::uint64_t> bounds;
    for (std::uint64_t b = 256; b <= (1ull << 30); b <<= 1) {
      bounds.push_back(b);
    }
    return bounds;
  }();
  return kBounds;
}

// ---- MetricsRegistry -----------------------------------------------------------

MetricsRegistry::MetricsRegistry() : tracer_(std::make_unique<Tracer>()) {}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked on purpose: instrumented call sites cache references that may
  // be touched during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

PerThreadCounter& MetricsRegistry::GetPerThreadCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_thread_counters_.find(name);
  if (it == per_thread_counters_.end()) {
    it = per_thread_counters_
             .emplace(std::string(name), std::make_unique<PerThreadCounter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(
    std::string_view name, const std::vector<std::uint64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::LatencyHistogram(std::string_view name) {
  return GetHistogram(name, LatencyBucketBoundsNs());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snapshot.counters.emplace_back(name, counter->Value());
    }
    for (const auto& [name, counter] : per_thread_counters_) {
      snapshot.counters.emplace_back(name, counter->Value());
      for (std::size_t i = 0; i < PerThreadCounter::kSlots; ++i) {
        const std::uint64_t v = counter->SlotValue(i);
        if (v != 0) {
          snapshot.counters.emplace_back(name + ".t" + std::to_string(i), v);
        }
      }
    }
    snapshot.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      snapshot.gauges.emplace_back(name, gauge->Value());
    }
    snapshot.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      HistogramSnapshot h;
      h.name = name;
      h.bounds = histogram->bounds();
      h.buckets.reserve(histogram->bucket_count());
      for (std::size_t i = 0; i < histogram->bucket_count(); ++i) {
        h.buckets.push_back(histogram->BucketCount(i));
      }
      h.count = histogram->Count();
      h.sum = histogram->Sum();
      snapshot.histograms.push_back(std::move(h));
    }
  }
  // Derived gauges: hit ratios for each cache level, in percent. These
  // exist only in the snapshot (never stored), so they are always
  // consistent with the counters exported next to them.
  const auto derive_hit_ratio = [&snapshot](std::string_view hit_name,
                                            std::string_view miss_name,
                                            const char* gauge_name) {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    bool seen = false;
    for (const auto& [name, value] : snapshot.counters) {
      if (name == hit_name) {
        hits = value;
        seen = true;
      } else if (name == miss_name) {
        misses = value;
        seen = true;
      }
    }
    if (seen && hits + misses > 0) {
      snapshot.gauges.emplace_back(
          gauge_name,
          static_cast<std::int64_t>(100.0 * static_cast<double>(hits) /
                                    static_cast<double>(hits + misses)));
    }
  };
  derive_hit_ratio("cache.block.hit", "cache.block.miss",
                   "cache.block.hit_ratio");
  derive_hit_ratio("cache.record.hit", "cache.record.miss",
                   "cache.record.hit_ratio");
  derive_hit_ratio("cache.decision.hit", "cache.decision.miss",
                   "cache.decision.hit_ratio");
  // journal.write_amp: journal bytes appended per logical byte the DBFS
  // accepted, in percent (100 = parity, 1200 = 12x amplification). The
  // extent journal exists to drive this toward 100.
  {
    std::uint64_t journal_bytes = 0;
    std::uint64_t logical_bytes = 0;
    for (const auto& [name, value] : snapshot.counters) {
      if (name == "inodefs.journal.bytes") journal_bytes = value;
      else if (name == "dbfs.put.logical_bytes") logical_bytes = value;
    }
    if (logical_bytes > 0) {
      snapshot.gauges.emplace_back(
          "journal.write_amp",
          static_cast<std::int64_t>(100.0 *
                                    static_cast<double>(journal_bytes) /
                                    static_cast<double>(logical_bytes)));
    }
  }
  snapshot.spans = tracer_->Spans();
  return snapshot;
}

std::string MetricsRegistry::TextSnapshot() const {
  return Snapshot().ToText();
}

std::string MetricsRegistry::JsonSnapshot() const {
  return Snapshot().ToJson();
}

void MetricsRegistry::ResetAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, counter] : per_thread_counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
    for (auto& [name, histogram] : histograms_) histogram->Reset();
  }
  tracer_->Clear();
}

}  // namespace rgpdos::metrics
