// Lock-ordering discipline for the thread-safe enforcement stack.
//
// Every mutable structure on the PD path (PS -> DED -> DBFS -> inodefs ->
// blockdev) is guarded by a ranked lock. The discipline mirrors the call
// direction through the stack: a thread may acquire a lock only if its
// rank is STRICTLY LOWER than every rank it already holds. Because ranks
// decrease monotonically from core down to the block device, any
// cross-layer acquisition that follows the call graph is legal and any
// cycle (the precondition for deadlock) is impossible. The full order,
// outermost first:
//
//   kRetention (80)       retention sweeper state (cursor + token bucket;
//                         held across a whole sweep page, so it must sit
//                         above every lock the erasure path takes)
//   kCore (70)            ProcessingStore registration/alert tables
//   kCoreLog (69)         ProcessingLog entries + hash chain
//   kSentinel (60)        AuditSink entries
//   kDbfsSchema (52)      DBFS type catalog (reader-writer)
//   kDbfsSubjectShard (51) one of N subject-tree shard locks
//   kDbfsRecordIndex (50) record-id B+tree + subject-root map
//   kDbfsRecordCache (49) decoded-record cache shards (in-memory only)
//   kInodefs (40)         primary/NPD InodeStore (recursive: group commit)
//   kInodefsSensitive (39) split sensitive-PD InodeStore
//   kFaultInject (25)     fault-injecting device decorator (crash state +
//                         volatile write-back buffer). Above the raw device
//                         it forwards to, below every store.
//   kBlockdev (20)        simulated block device storage + stats
//   kBlockCache (15)      block-cache LRU shards. Deliberately BELOW the
//                         device: a shard lock is never held across inner
//                         device IO (lookups copy out, miss-fills re-lock),
//                         so the cache can sit on either side of a
//                         latency-model decorator without inversions.
//   kCryptoRng (10)       SecureRandom stream (leaf; any layer may draw)
//
// Strict ordering also forbids holding two locks of the same rank, which
// is why a thread works on at most one DBFS subject shard at a time and
// why the split sensitive store gets its own rank below the primary
// store (Dbfs::Put nests sensitive-store writes inside a primary-store
// group-commit scope).
//
// Rank violations are programming errors: they are checked on every
// acquisition (a thread-local rank stack, a handful of entries) and
// abort the process with a diagnostic rather than deadlocking later.
//
// Contention accounting: acquisitions first spin through try_lock; a
// failed try_lock bumps `lock.contention.<name>` (a PerThreadCounter, so
// snapshots show which threads fought) plus `lock.contention.total`
// before falling back to a blocking lock.
#pragma once

#include <atomic>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>

#include "metrics/metrics.hpp"

namespace rgpdos::metrics {

enum class LockRank : int {
  kCryptoRng = 10,
  kBlockCache = 15,
  kBlockdev = 20,
  kFaultInject = 25,
  kInodefsSensitive = 39,
  kInodefs = 40,
  kDbfsRecordCache = 49,
  kDbfsRecordIndex = 50,
  kDbfsSubjectShard = 51,
  kDbfsSchema = 52,
  kSentinel = 60,
  kCoreLog = 69,
  kCore = 70,
  kRetention = 80,
};

namespace lock_internal {
/// Aborts (after a stderr diagnostic) if the calling thread already holds
/// a lock of rank <= `rank`.
void CheckAcquire(int rank, const char* name);
void PushRank(int rank);
void PopRank(int rank);
/// Test hook: number of ranks the calling thread currently holds.
[[nodiscard]] std::size_t HeldRankCount();
}  // namespace lock_internal

/// Rank-checked exclusive mutex. Recursive: re-acquisition by the owning
/// thread is permitted without a rank check (InodeStore's group-commit
/// scope holds the store lock while public methods re-enter). Satisfies
/// Lockable, so it composes with std::lock_guard / std::unique_lock.
class OrderedMutex {
 public:
  OrderedMutex(LockRank rank, std::string_view name);
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock();
  void unlock();
  [[nodiscard]] bool try_lock();

  [[nodiscard]] LockRank rank() const { return rank_; }

 private:
  std::recursive_mutex mu_;
  const LockRank rank_;
  const std::string name_;
  PerThreadCounter* contention_;
  PerThreadCounter* contention_total_;
  // Owner/depth let lock() distinguish first acquisition (rank-checked,
  // rank pushed) from recursion. depth_ is only touched while holding
  // mu_; owner_ is relaxed-atomic because non-owners read it.
  std::atomic<std::thread::id> owner_{};
  int depth_ = 0;
};

/// Rank-checked reader-writer mutex (non-recursive). Shared and
/// exclusive acquisitions are both rank-checked, so a reader upgrading
/// in place (acquire exclusive while holding shared) is caught as the
/// self-deadlock it is. Satisfies SharedLockable for std::shared_lock.
class OrderedSharedMutex {
 public:
  OrderedSharedMutex(LockRank rank, std::string_view name);
  OrderedSharedMutex(const OrderedSharedMutex&) = delete;
  OrderedSharedMutex& operator=(const OrderedSharedMutex&) = delete;

  void lock();
  void unlock();
  [[nodiscard]] bool try_lock();
  void lock_shared();
  void unlock_shared();
  [[nodiscard]] bool try_lock_shared();

  [[nodiscard]] LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const std::string name_;
  PerThreadCounter* contention_;
  PerThreadCounter* contention_total_;
};

}  // namespace rgpdos::metrics
