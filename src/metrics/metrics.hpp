// Observability primitives for the PD enforcement hot path.
//
// Every layer the paper's Fig-4 pipeline crosses (PS invoke -> DED ->
// DBFS -> inode store -> sub-kernel IO) increments counters and records
// latency histograms here, so benches and CI can see what the membrane
// actually costs. Three design rules keep the subsystem honest:
//
//   1. Thread-safe by construction: counters, gauges and histogram
//      buckets are relaxed atomics; registration is mutex-protected and
//      hands out references that stay stable for the process lifetime.
//   2. Near-zero cost when disabled: every instrumentation macro guards
//      on a single relaxed atomic load (`metrics::Enabled()`) before it
//      touches anything else — no locks, no allocation, no clock reads
//      (bench_metrics_overhead demonstrates this).
//   3. Exportable: MetricsRegistry::Snapshot() produces a plain struct
//      with text and JSON renderings (snapshot.hpp); benches dump it as
//      a BENCH_*.json artifact that CI uploads.
//
// Metric names follow `<subsystem>.<metric>[.<unit>]`, e.g.
// `dbfs.put.latency_ns` or `sentinel.enforce.denied`.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/snapshot.hpp"

namespace rgpdos::metrics {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Process-wide kill switch. The ONLY thing a disabled call site pays is
/// this relaxed load.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

/// Monotonic nanoseconds (steady clock) for latency measurement.
[[nodiscard]] std::int64_t MonotonicNanos();

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depths, free blocks, ...).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations `v <= bounds[i]`
/// (first matching bound, Prometheus `le` semantics); one extra overflow
/// bucket catches `v > bounds.back()`. Observation is lock-free: one
/// binary search over immutable bounds plus three relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void Observe(std::uint64_t value);

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_count() const { return bounds_.size() + 1; }
  [[nodiscard]] std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::vector<std::uint64_t> bounds_;  // sorted, strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Dense per-thread index, assigned on first use and stable for the
/// thread's lifetime. Indices are NOT recycled when threads exit; after
/// `PerThreadCounter::kSlots` distinct threads, later threads fold onto
/// slot `index % kSlots` (counts stay correct in aggregate, attribution
/// degrades gracefully).
[[nodiscard]] std::size_t ThreadIndex();

/// Counter striped across per-thread slots so concurrent increments from
/// different threads never touch the same cache line's atomic. Used for
/// lock-contention accounting where the interesting question is "which
/// threads are fighting", not just "how often".
class PerThreadCounter {
 public:
  static constexpr std::size_t kSlots = 64;

  void Inc(std::uint64_t n = 1) {
    slots_[ThreadIndex() % kSlots].fetch_add(n, std::memory_order_relaxed);
  }
  /// Sum over all slots (relaxed; racing increments may be missed, like
  /// Counter::Value during concurrent updates).
  [[nodiscard]] std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot.load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] std::uint64_t SlotValue(std::size_t i) const {
    return slots_[i % kSlots].load(std::memory_order_relaxed);
  }
  void Reset() {
    for (auto& slot : slots_) slot.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kSlots> slots_{};
};

/// The default latency bucket ladder: powers of two from 256 ns to ~1 s.
[[nodiscard]] const std::vector<std::uint64_t>& LatencyBucketBoundsNs();

class Tracer;

/// Process-wide registry. Handing out `Counter&` / `Histogram&` is the
/// slow path (mutex + map lookup); call sites cache the reference in a
/// function-local static so the hot path is only the atomic operation.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// Per-thread striped counter (see PerThreadCounter). Snapshots export
  /// the aggregate under `name` plus one `name.t<i>` entry per non-zero
  /// thread slot.
  PerThreadCounter& GetPerThreadCounter(std::string_view name);
  /// `bounds` is consulted only on first registration of `name`.
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<std::uint64_t>& bounds);
  /// Histogram pre-shaped with LatencyBucketBoundsNs().
  Histogram& LatencyHistogram(std::string_view name);

  [[nodiscard]] Tracer& tracer() { return *tracer_; }

  /// Consistent-enough snapshot of every registered metric (values are
  /// read with relaxed loads; cross-metric skew is acceptable).
  [[nodiscard]] MetricsSnapshot Snapshot() const;
  [[nodiscard]] std::string TextSnapshot() const;
  [[nodiscard]] std::string JsonSnapshot() const;

  /// Zero every value and drop recorded spans, keeping registrations (and
  /// the references call sites cached) intact. Test isolation hook.
  void ResetAll();

 private:
  MetricsRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<PerThreadCounter>, std::less<>>
      per_thread_counters_;
  std::unique_ptr<Tracer> tracer_;
};

/// RAII latency probe. A null histogram (disabled metrics) skips the
/// clock reads entirely.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ns_ = MonotonicNanos();
  }
  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          static_cast<std::uint64_t>(MonotonicNanos() - start_ns_));
    }
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  std::int64_t start_ns_ = 0;
};

#define RGPD_METRICS_CAT_(a, b) a##b
#define RGPD_METRICS_CAT(a, b) RGPD_METRICS_CAT_(a, b)

/// Bump a named counter by `n`. `name` must be a string literal (the
/// resolved reference is cached per call site). Disabled cost: one
/// relaxed atomic load.
#define RGPD_METRIC_COUNT_N(name, n)                                       \
  do {                                                                     \
    if (::rgpdos::metrics::Enabled()) {                                    \
      static ::rgpdos::metrics::Counter& rgpd_metric_counter =             \
          ::rgpdos::metrics::MetricsRegistry::Instance().GetCounter(name); \
      rgpd_metric_counter.Inc(n);                                          \
    }                                                                      \
  } while (false)

#define RGPD_METRIC_COUNT(name) RGPD_METRIC_COUNT_N(name, 1)

/// Record one observation into a named histogram with the default
/// latency bucket ladder.
#define RGPD_METRIC_OBSERVE(name, value)                              \
  do {                                                                \
    if (::rgpdos::metrics::Enabled()) {                               \
      static ::rgpdos::metrics::Histogram& rgpd_metric_histogram =    \
          ::rgpdos::metrics::MetricsRegistry::Instance()              \
              .LatencyHistogram(name);                                \
      rgpd_metric_histogram.Observe(                                  \
          static_cast<std::uint64_t>(value));                         \
    }                                                                 \
  } while (false)

/// Time the enclosing scope into a latency histogram. Disabled cost: one
/// relaxed atomic load (the timer object holds a null histogram and never
/// reads the clock).
#define RGPD_METRIC_SCOPED_LATENCY(name)                              \
  ::rgpdos::metrics::ScopedLatencyTimer RGPD_METRICS_CAT(             \
      rgpd_scoped_latency_, __LINE__)(                                \
      ::rgpdos::metrics::Enabled()                                    \
          ? []() -> ::rgpdos::metrics::Histogram* {                   \
              static ::rgpdos::metrics::Histogram& rgpd_hist =        \
                  ::rgpdos::metrics::MetricsRegistry::Instance()      \
                      .LatencyHistogram(name);                        \
              return &rgpd_hist;                                      \
            }()                                                       \
          : nullptr)

/// Set a named gauge.
#define RGPD_METRIC_GAUGE_SET(name, value)                               \
  do {                                                                   \
    if (::rgpdos::metrics::Enabled()) {                                  \
      static ::rgpdos::metrics::Gauge& rgpd_metric_gauge =               \
          ::rgpdos::metrics::MetricsRegistry::Instance().GetGauge(name); \
      rgpd_metric_gauge.Set(value);                                      \
    }                                                                    \
  } while (false)

}  // namespace rgpdos::metrics
