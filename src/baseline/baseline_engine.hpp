// The Fig-2 baseline: "GDPR at the DB engine level in userspace".
//
// Models the prior-work approach (Shastri et al. / Schwarzkopf et al.,
// paper refs [17], [16]): a userspace database engine bolts GDPR
// bookkeeping (subject ids, consent strings, timestamps, TTLs) onto
// ordinary tables stored in ordinary files of a journaling filesystem,
// "thus relying on a general purpose OS".
//
// Two properties make it the paper's foil, and both are measurable here:
//   * Deleting at the DB level appends a tombstone and (at best)
//     compacts the table file — it never scrubs freed blocks nor the
//     FS journal, so "deleted" PD remains recoverable below the engine
//     (bench_fig2_journal_leak).
//   * Per-subject operations (the GDPR rights) have no kernel support:
//     rights are full scans over every table (bench_rights_*).
#pragma once

#include <map>
#include <string>

#include "common/clock.hpp"
#include "db/catalog.hpp"
#include "dsl/ast.hpp"

namespace rgpdos::baseline {

using SubjectId = std::uint64_t;

/// One row as the baseline sees it: user fields + GDPR bookkeeping.
struct BaselineRecord {
  db::RowId row_id = 0;
  SubjectId subject = 0;
  db::Row fields;  ///< user fields only (bookkeeping stripped)
};

class BaselineEngine {
 public:
  /// Create the engine over a directory of the (journaling) file FS.
  /// `subject_index` enables the ablation variant: an in-memory
  /// subject -> rows index that removes the full-scan penalty on GDPR
  /// rights. It narrows the performance gap against rgpdOS but changes
  /// nothing about the compliance gap (deleted bytes still survive
  /// below the engine) — that is the point of the ablation.
  static Result<BaselineEngine> Create(inodefs::FileSystem* fs,
                                       std::string dir, const Clock* clock,
                                       bool subject_index = false);

  /// Declare a table from the same TypeDecl rgpdOS uses, with appended
  /// bookkeeping columns (_subject, _consents, _created_at, _ttl).
  Status CreateType(const dsl::TypeDecl& decl);

  /// Insert a record with the type's default consents.
  Result<db::RowId> Insert(std::string_view type, SubjectId subject,
                           const db::Row& fields);

  /// Rows of `type` whose consent string authorises `purpose` and whose
  /// TTL has not elapsed — the engine-level analogue of ded_filter, run
  /// in userspace over a full scan.
  Result<std::vector<BaselineRecord>> SelectConsented(
      std::string_view type, std::string_view purpose) const;

  /// Point read by row id.
  Result<BaselineRecord> Get(std::string_view type, db::RowId id) const;
  Status Update(std::string_view type, db::RowId id, const db::Row& fields);

  // ---- GDPR rights, DB-engine style (full scans) ----------------------------

  /// Right of access: every record of `subject` across all tables.
  Result<std::vector<BaselineRecord>> GetDataBySubject(
      SubjectId subject) const;
  /// Right to be forgotten: tombstone every record of the subject.
  /// With `compact`, table files are rewritten afterwards — still
  /// without scrubbing the old blocks or the journal.
  Result<std::size_t> DeleteSubject(SubjectId subject, bool compact);
  /// Consent withdrawal: rewrite the consent column of every record of
  /// the subject.
  Result<std::size_t> UpdateConsent(SubjectId subject,
                                    std::string_view purpose,
                                    std::string_view new_scope);
  /// Regulator audit: count records per purpose authorisation.
  Result<std::map<std::string, std::size_t>> AuditPurpose(
      std::string_view purpose) const;

  [[nodiscard]] std::vector<std::string> TypeNames() const;

 private:
  struct TypeInfo {
    dsl::TypeDecl decl;
    std::size_t user_field_count = 0;
  };

  BaselineEngine(db::Catalog catalog, const Clock* clock,
                 bool subject_index)
      : catalog_(std::move(catalog)),
        clock_(clock),
        subject_index_enabled_(subject_index) {}

  static std::string EncodeConsents(const dsl::TypeDecl& decl);
  static bool ConsentAllows(std::string_view consents,
                            std::string_view purpose);

  db::Catalog catalog_;
  const Clock* clock_;  // borrowed
  std::map<std::string, TypeInfo, std::less<>> types_;

  bool subject_index_enabled_ = false;
  /// subject -> (table, row id); maintained on insert/delete when the
  /// ablation index is enabled.
  std::multimap<SubjectId, std::pair<std::string, db::RowId>>
      subject_index_;
};

}  // namespace rgpdos::baseline
