#include "baseline/baseline_engine.hpp"

#include <set>

namespace rgpdos::baseline {

namespace {
// Bookkeeping columns appended after the user fields.
constexpr std::size_t kBookkeepingColumns = 4;  // _subject, _consents,
                                                // _created_at, _ttl
}  // namespace

Result<BaselineEngine> BaselineEngine::Create(inodefs::FileSystem* fs,
                                              std::string dir,
                                              const Clock* clock,
                                              bool subject_index) {
  RGPD_ASSIGN_OR_RETURN(db::Catalog catalog,
                        db::Catalog::Create(fs, std::move(dir)));
  return BaselineEngine(std::move(catalog), clock, subject_index);
}

std::string BaselineEngine::EncodeConsents(const dsl::TypeDecl& decl) {
  // "purpose1=all;purpose2=none;purpose3=view:v_ano;"
  std::string out;
  for (const auto& [purpose, spec] : decl.default_consents) {
    out += purpose;
    out += '=';
    switch (spec.kind) {
      case membrane::ConsentKind::kAll: out += "all"; break;
      case membrane::ConsentKind::kNone: out += "none"; break;
      case membrane::ConsentKind::kView: out += "view:" + spec.view; break;
    }
    out += ';';
  }
  return out;
}

bool BaselineEngine::ConsentAllows(std::string_view consents,
                                   std::string_view purpose) {
  // Parse the consent string on every check — the engine has no richer
  // representation available in its tables.
  std::size_t pos = 0;
  while (pos < consents.size()) {
    const std::size_t eq = consents.find('=', pos);
    if (eq == std::string_view::npos) break;
    const std::size_t semi = consents.find(';', eq);
    const std::string_view key = consents.substr(pos, eq - pos);
    const std::string_view value = consents.substr(
        eq + 1, (semi == std::string_view::npos ? consents.size() : semi) -
                    eq - 1);
    if (key == purpose) return value != "none";
    if (semi == std::string_view::npos) break;
    pos = semi + 1;
  }
  return false;  // unlisted purposes are denied
}

Status BaselineEngine::CreateType(const dsl::TypeDecl& decl) {
  RGPD_RETURN_IF_ERROR(decl.Validate());
  if (types_.count(decl.name) != 0) {
    return AlreadyExists("type exists: " + decl.name);
  }
  std::vector<db::FieldDef> fields = decl.fields;
  fields.push_back({"_subject", db::ValueType::kInt, false});
  fields.push_back({"_consents", db::ValueType::kString, false});
  fields.push_back({"_created_at", db::ValueType::kInt, false});
  fields.push_back({"_ttl", db::ValueType::kInt, false});
  RGPD_RETURN_IF_ERROR(
      catalog_.CreateTable(db::Schema(decl.name, std::move(fields)))
          .status());
  TypeInfo info;
  info.decl = decl;
  info.user_field_count = decl.fields.size();
  types_.emplace(decl.name, std::move(info));
  return Status::Ok();
}

Result<db::RowId> BaselineEngine::Insert(std::string_view type,
                                         SubjectId subject,
                                         const db::Row& fields) {
  const auto it = types_.find(type);
  if (it == types_.end()) return NotFound("no type: " + std::string(type));
  RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog_.GetTable(type));
  db::Row row = fields;
  row.emplace_back(static_cast<std::int64_t>(subject));
  row.emplace_back(EncodeConsents(it->second.decl));
  row.emplace_back(static_cast<std::int64_t>(clock_->Now()));
  row.emplace_back(static_cast<std::int64_t>(it->second.decl.ttl));
  RGPD_ASSIGN_OR_RETURN(db::RowId id, table->Insert(row));
  if (subject_index_enabled_) {
    subject_index_.emplace(subject,
                           std::make_pair(std::string(type), id));
  }
  return id;
}

Result<std::vector<BaselineRecord>> BaselineEngine::SelectConsented(
    std::string_view type, std::string_view purpose) const {
  const auto it = types_.find(type);
  if (it == types_.end()) return NotFound("no type: " + std::string(type));
  auto& catalog = const_cast<db::Catalog&>(catalog_);
  RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog.GetTable(type));
  const std::size_t user_fields = it->second.user_field_count;
  const TimeMicros now = clock_->Now();
  std::vector<BaselineRecord> out;
  RGPD_RETURN_IF_ERROR(table->Scan([&](db::RowId id, const db::Row& row) {
    const std::string consents = *row[user_fields + 1].AsString();
    const std::int64_t created = *row[user_fields + 2].AsInt();
    const std::int64_t ttl = *row[user_fields + 3].AsInt();
    if (ttl != 0 && now >= created + ttl) return true;  // expired
    if (!ConsentAllows(consents, purpose)) return true;
    BaselineRecord record;
    record.row_id = id;
    record.subject = static_cast<SubjectId>(*row[user_fields].AsInt());
    record.fields.assign(row.begin(),
                         row.begin() + static_cast<std::ptrdiff_t>(
                                           user_fields));
    out.push_back(std::move(record));
    return true;
  }));
  return out;
}

Result<BaselineRecord> BaselineEngine::Get(std::string_view type,
                                           db::RowId id) const {
  const auto it = types_.find(type);
  if (it == types_.end()) return NotFound("no type: " + std::string(type));
  auto& catalog = const_cast<db::Catalog&>(catalog_);
  RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog.GetTable(type));
  RGPD_ASSIGN_OR_RETURN(db::Row row, table->Get(id));
  const std::size_t user_fields = it->second.user_field_count;
  BaselineRecord record;
  record.row_id = id;
  record.subject = static_cast<SubjectId>(*row[user_fields].AsInt());
  record.fields.assign(
      row.begin(), row.begin() + static_cast<std::ptrdiff_t>(user_fields));
  return record;
}

Status BaselineEngine::Update(std::string_view type, db::RowId id,
                              const db::Row& fields) {
  const auto it = types_.find(type);
  if (it == types_.end()) return NotFound("no type: " + std::string(type));
  RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog_.GetTable(type));
  RGPD_ASSIGN_OR_RETURN(db::Row row, table->Get(id));
  const std::size_t user_fields = it->second.user_field_count;
  if (fields.size() != user_fields) {
    return InvalidArgument("field arity mismatch");
  }
  for (std::size_t i = 0; i < user_fields; ++i) row[i] = fields[i];
  return table->Update(id, row);
}

Result<std::vector<BaselineRecord>> BaselineEngine::GetDataBySubject(
    SubjectId subject) const {
  auto& catalog = const_cast<db::Catalog&>(catalog_);
  std::vector<BaselineRecord> out;
  if (subject_index_enabled_) {
    // Ablation variant: indexed lookup instead of the full scan.
    const auto [begin, end] = subject_index_.equal_range(subject);
    for (auto entry = begin; entry != end; ++entry) {
      const auto& [type, row_id] = entry->second;
      RGPD_ASSIGN_OR_RETURN(BaselineRecord record, Get(type, row_id));
      out.push_back(std::move(record));
    }
    return out;
  }
  // No subject index: the right of access is a scan of every table —
  // the GDPRbench-documented pain point.
  for (const auto& [name, info] : types_) {
    RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog.GetTable(name));
    const std::size_t user_fields = info.user_field_count;
    RGPD_RETURN_IF_ERROR(table->Scan([&](db::RowId id, const db::Row& row) {
      if (static_cast<SubjectId>(*row[user_fields].AsInt()) != subject) {
        return true;
      }
      BaselineRecord record;
      record.row_id = id;
      record.subject = subject;
      record.fields.assign(row.begin(),
                           row.begin() + static_cast<std::ptrdiff_t>(
                                             user_fields));
      out.push_back(std::move(record));
      return true;
    }));
  }
  return out;
}

Result<std::size_t> BaselineEngine::DeleteSubject(SubjectId subject,
                                                  bool compact) {
  std::size_t deleted = 0;
  if (subject_index_enabled_) {
    const auto [begin, end] = subject_index_.equal_range(subject);
    std::set<std::string> touched;
    for (auto entry = begin; entry != end; ++entry) {
      const auto& [type, row_id] = entry->second;
      RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog_.GetTable(type));
      RGPD_RETURN_IF_ERROR(table->Delete(row_id));
      touched.insert(type);
      ++deleted;
    }
    subject_index_.erase(subject);
    if (compact) {
      for (const std::string& type : touched) {
        RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog_.GetTable(type));
        RGPD_RETURN_IF_ERROR(table->Compact());
      }
    }
    return deleted;
  }
  for (const auto& [name, info] : types_) {
    RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog_.GetTable(name));
    const std::size_t user_fields = info.user_field_count;
    std::vector<db::RowId> victims;
    RGPD_RETURN_IF_ERROR(table->Scan([&](db::RowId id, const db::Row& row) {
      if (static_cast<SubjectId>(*row[user_fields].AsInt()) == subject) {
        victims.push_back(id);
      }
      return true;
    }));
    for (db::RowId id : victims) {
      RGPD_RETURN_IF_ERROR(table->Delete(id));
      ++deleted;
    }
    if (compact && !victims.empty()) {
      RGPD_RETURN_IF_ERROR(table->Compact());
    }
  }
  return deleted;
}

Result<std::size_t> BaselineEngine::UpdateConsent(SubjectId subject,
                                                  std::string_view purpose,
                                                  std::string_view new_scope) {
  std::size_t updated = 0;
  for (const auto& [name, info] : types_) {
    RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog_.GetTable(name));
    const std::size_t user_fields = info.user_field_count;
    std::vector<std::pair<db::RowId, db::Row>> changes;
    RGPD_RETURN_IF_ERROR(table->Scan([&](db::RowId id, const db::Row& row) {
      if (static_cast<SubjectId>(*row[user_fields].AsInt()) != subject) {
        return true;
      }
      db::Row updated_row = row;
      // Rewrite (or append) the purpose's entry in the consent string.
      std::string consents = *row[user_fields + 1].AsString();
      std::string rebuilt;
      bool found = false;
      std::size_t pos = 0;
      while (pos < consents.size()) {
        const std::size_t semi = consents.find(';', pos);
        const std::string_view entry = std::string_view(consents).substr(
            pos, (semi == std::string::npos ? consents.size() : semi) - pos);
        if (!entry.empty()) {
          const std::size_t eq = entry.find('=');
          if (eq != std::string_view::npos &&
              entry.substr(0, eq) == purpose) {
            rebuilt += std::string(purpose) + "=" + std::string(new_scope) +
                       ";";
            found = true;
          } else {
            rebuilt += std::string(entry) + ";";
          }
        }
        if (semi == std::string::npos) break;
        pos = semi + 1;
      }
      if (!found) {
        rebuilt +=
            std::string(purpose) + "=" + std::string(new_scope) + ";";
      }
      updated_row[user_fields + 1] = db::Value(std::move(rebuilt));
      changes.emplace_back(id, std::move(updated_row));
      return true;
    }));
    for (auto& [id, row] : changes) {
      RGPD_RETURN_IF_ERROR(table->Update(id, row));
      ++updated;
    }
  }
  return updated;
}

Result<std::map<std::string, std::size_t>> BaselineEngine::AuditPurpose(
    std::string_view purpose) const {
  auto& catalog = const_cast<db::Catalog&>(catalog_);
  std::map<std::string, std::size_t> out;
  for (const auto& [name, info] : types_) {
    RGPD_ASSIGN_OR_RETURN(db::Table * table, catalog.GetTable(name));
    const std::size_t user_fields = info.user_field_count;
    std::size_t count = 0;
    RGPD_RETURN_IF_ERROR(table->Scan([&](db::RowId, const db::Row& row) {
      if (ConsentAllows(*row[user_fields + 1].AsString(), purpose)) {
        ++count;
      }
      return true;
    }));
    out[name] = count;
  }
  return out;
}

std::vector<std::string> BaselineEngine::TypeNames() const {
  std::vector<std::string> names;
  for (const auto& [name, info] : types_) names.push_back(name);
  return names;
}

}  // namespace rgpdos::baseline
