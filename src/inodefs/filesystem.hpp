// Path-based file-granularity filesystem on top of InodeStore.
//
// This is the "second filesystem" of rgpdOS (paper §2): a traditional
// ext4-like store for non-personal data, visible to every process. It is
// also the storage substrate of the Fig-2 baseline, where a userspace DB
// engine keeps PD in ordinary files — and where Unlink()'s non-scrubbing
// behaviour (plus the data journal) is precisely the GDPR hazard the
// paper describes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "inodefs/inode_store.hpp"

namespace rgpdos::inodefs {

/// One directory entry.
struct DirEntry {
  std::string name;
  InodeId inode = kInvalidInode;
  InodeKind kind = InodeKind::kFree;
};

class FileSystem {
 public:
  /// Wrap a freshly formatted store, creating the root directory.
  static Result<FileSystem> Create(InodeStore* store);
  /// Wrap a mounted store whose superblock already names a root.
  static Result<FileSystem> Open(InodeStore* store);

  // Paths are absolute, '/'-separated ("/a/b/c"). No "." / "..".

  Status Mkdir(std::string_view path);
  /// Create an empty regular file. Fails if it exists.
  Result<InodeId> CreateFile(std::string_view path);
  /// Replace a file's contents, creating it if needed.
  Status WriteFile(std::string_view path, ByteSpan data);
  Status AppendFile(std::string_view path, ByteSpan data);
  Result<Bytes> ReadFile(std::string_view path) const;
  /// Remove a file. `scrub` selects GDPR-grade zeroing of freed blocks;
  /// the default mirrors ext4: blocks are merely returned to the
  /// allocator with their old contents intact.
  Status Unlink(std::string_view path, bool scrub = false);
  Result<std::vector<DirEntry>> ReadDir(std::string_view path) const;
  Result<Inode> Stat(std::string_view path) const;
  [[nodiscard]] bool Exists(std::string_view path) const;
  /// Resolve a path to its inode id (files and directories).
  Result<InodeId> Lookup(std::string_view path) const;

  [[nodiscard]] InodeStore& store() { return *store_; }

 private:
  explicit FileSystem(InodeStore* store, InodeId root)
      : store_(store), root_(root) {}

  static Result<std::vector<std::string>> SplitPath(std::string_view path);
  Result<std::vector<DirEntry>> LoadDir(InodeId dir) const;
  Status StoreDir(InodeId dir, const std::vector<DirEntry>& entries);
  /// Resolve the parent directory of `path`; returns (parent inode,
  /// final component).
  struct ParentRef {
    InodeId dir;
    std::string leaf;
  };
  Result<ParentRef> ResolveParent(std::string_view path) const;

  InodeStore* store_;  // borrowed
  InodeId root_;
};

}  // namespace rgpdos::inodefs
