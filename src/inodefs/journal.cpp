#include "inodefs/journal.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/crc32.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::inodefs {

namespace {

constexpr std::uint32_t kRecordMagic = 0x4C4E524A;  // "JRNL"
constexpr std::uint8_t kKindData = 1;
constexpr std::uint8_t kKindCommit = 2;
/// Self-committing extent transaction: target = block count, payload =
/// per-block extent groups (see journal.hpp). A valid CRC is the commit.
constexpr std::uint8_t kKindExtents = 3;

// magic u32 | seq u64 | kind u8 | target u64 | payload_len u32
constexpr std::size_t kHeaderSize = 4 + 8 + 1 + 8 + 4;
constexpr std::size_t kCrcSize = 4;
// The commit record's payload: u32 count of the transaction's data
// records. Replay discards commits whose recovered record count differs.
constexpr std::size_t kCommitPayloadSize = 4;

// Per-block extent-group framing: block u64 | base u8 | extent_count u16.
constexpr std::size_t kExtentGroupHeader = 8 + 1 + 2;
constexpr std::size_t kExtentHeader = 4 + 4;  // offset u32 | len u32
/// Two dirty runs closer than this are merged into one extent — eight
/// bytes of extent header buy nothing on a sub-16-byte gap.
constexpr std::size_t kExtentMergeGap = 16;

struct Extent {
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
};

/// Dirty ranges of `data` against `base` (same length), nearby runs
/// merged. An identical block yields no extents.
std::vector<Extent> DiffExtents(ByteSpan base, ByteSpan data) {
  std::vector<Extent> extents;
  const std::size_t n = data.size();
  std::size_t i = 0;
  while (i < n) {
    if (base[i] == data[i]) {
      ++i;
      continue;
    }
    std::size_t end = i + 1;
    std::size_t clean = 0;  // trailing equal bytes inside the run
    while (end < n) {
      if (base[end] == data[end]) {
        if (++clean > kExtentMergeGap) {
          ++end;  // count the byte just examined, so end - clean is the
                  // exclusive end of the dirty run on both exit paths
          break;
        }
      } else {
        clean = 0;
      }
      ++end;
    }
    const std::size_t run_end = end - clean;
    extents.push_back({static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(run_end - i)});
    i = end;
  }
  return extents;
}

metrics::Histogram& BytesPerCommitHistogram() {
  static const std::vector<std::uint64_t> kBounds = {
      64,    128,   256,    512,    1024,   2048,    4096,
      8192,  16384, 32768,  65536,  131072, 262144,  524288,
      1048576};
  static metrics::Histogram& h = metrics::MetricsRegistry::Instance()
      .GetHistogram("inodefs.journal.bytes_per_commit", kBounds);
  return h;
}

}  // namespace

std::uint64_t Journal::RecordBlocks(std::size_t payload_size) const {
  const std::size_t total = kHeaderSize + payload_size + kCrcSize;
  return (total + sb_.block_size - 1) / sb_.block_size;
}

Bytes Journal::BuildRecord(std::uint64_t seq, std::uint8_t kind,
                           std::uint64_t target, ByteSpan payload) const {
  ByteWriter w(kHeaderSize + payload.size() + kCrcSize);
  w.PutU32(kRecordMagic);
  w.PutU64(seq);
  w.PutU8(kind);
  w.PutU64(target);
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutRaw(payload);
  const std::uint32_t crc = Crc32(w.buffer());
  w.PutU32(crc);
  Bytes image = w.Take();
  image.resize(RecordBlocks(payload.size()) * sb_.block_size, 0);
  return image;
}

Status Journal::WriteRecordImages(const std::vector<Bytes>& images) {
  // All blocks between two head wraps go out as ONE submission; the
  // async layer below turns that into a single amortised device batch.
  std::vector<blockdev::BatchWrite> batch;
  const auto flush_batch = [&]() -> Status {
    if (batch.empty()) return Status::Ok();
    // Journal block writes are idempotent (full images), so the batch
    // goes out as one submission; if that fails, degrade to per-block
    // bounded retry — re-running the whole batch on transient-heavy
    // media would re-trip the fault on every attempt once the batch is
    // wider than the error period.
    Status s = device_.WriteBatch(batch);
    if (!s.ok()) {
      s = Status::Ok();
      for (const blockdev::BatchWrite& w : batch) {
        s = RetryIo(retry_, [&] { return device_.WriteBlock(w.index, w.data); });
        if (!s.ok()) break;
      }
    }
    batch.clear();
    return s;
  };
  for (const Bytes& image : images) {
    const std::uint64_t blocks_needed = image.size() / sb_.block_size;
    // Head is a block offset within the region; wrap if the record does
    // not fit in the tail (old records there are simply overwritten
    // later). Wrapping starts destroying old records, so the checkpoint
    // watermark covering them must reach the medium first — and the
    // records staged so far must land before that barrier.
    if (sb_.journal_head + blocks_needed > sb_.journal_blocks) {
      RGPD_RETURN_IF_ERROR(flush_batch());
      RGPD_RETURN_IF_ERROR(PersistSuperblock());
      sb_.journal_head = 0;
    }
    for (std::uint64_t i = 0; i < blocks_needed; ++i) {
      batch.push_back(
          {sb_.journal_start + sb_.journal_head + i,
           ByteSpan(image.data() + i * sb_.block_size, sb_.block_size)});
    }
    sb_.journal_head += blocks_needed;
    bytes_logged_ += image.size();
  }
  return flush_batch();
}

Status Journal::AppendTransaction(const std::vector<JournalWrite>& writes) {
  RGPD_METRIC_SCOPED_LATENCY("inodefs.journal.commit_latency_ns");
  const std::uint64_t before = bytes_logged_;

  // Build every payload first so the whole-region guard sees the real
  // size: a transaction larger than the region would wrap over its OWN
  // earlier records mid-append and be discarded at replay as incomplete
  // — silent data loss.
  std::uint64_t total_blocks = 0;
  Bytes extent_payload;
  if (extent_mode_) {
    ByteWriter w(writes.size() * kExtentGroupHeader);
    for (const JournalWrite& write : writes) {
      // Dirty ranges against the declared base; full image when no
      // preimage is known or when extents would not actually save bytes.
      Bytes zero_base;
      std::vector<Extent> extents;
      bool full = write.base == JournalWrite::kBaseNone;
      std::uint8_t base = write.base;
      if (!full) {
        ByteSpan base_span;
        if (write.base == JournalWrite::kBaseZero) {
          zero_base.assign(write.data.size(), 0);
          base_span = ByteSpan(zero_base.data(), zero_base.size());
        } else {
          base_span = ByteSpan(write.preimage.data(), write.preimage.size());
        }
        if (base_span.size() != write.data.size()) {
          full = true;
        } else {
          extents = DiffExtents(base_span, write.data);
          std::size_t encoded = 0;
          for (const Extent& e : extents) encoded += kExtentHeader + e.len;
          if (encoded >= kExtentHeader + write.data.size()) full = true;
        }
      }
      if (full) {
        // One extent covering the whole block; a zero base means replay
        // never needs to read the device for it.
        base = JournalWrite::kBaseZero;
        extents.assign(
            1, {0, static_cast<std::uint32_t>(write.data.size())});
      }
      w.PutU64(write.block);
      w.PutU8(base);
      w.PutU16(static_cast<std::uint16_t>(extents.size()));
      for (const Extent& e : extents) {
        w.PutU32(e.offset);
        w.PutU32(e.len);
      }
      for (const Extent& e : extents) {
        w.PutRaw(ByteSpan(write.data.data() + e.offset, e.len));
      }
    }
    extent_payload = w.Take();
    total_blocks = RecordBlocks(extent_payload.size());
  } else {
    total_blocks = RecordBlocks(kCommitPayloadSize);
    for (const JournalWrite& write : writes) {
      total_blocks += RecordBlocks(write.data.size());
    }
  }
  if (total_blocks > sb_.journal_blocks) {
    return ResourceExhausted("transaction larger than the journal region");
  }

  const std::uint64_t seq = sb_.journal_seq++;
  std::vector<Bytes> images;
  if (extent_mode_) {
    images.push_back(BuildRecord(seq, kKindExtents, writes.size(),
                                 ByteSpan(extent_payload)));
  } else {
    images.reserve(writes.size() + 1);
    for (const JournalWrite& write : writes) {
      images.push_back(BuildRecord(seq, kKindData, write.block,
                                   ByteSpan(write.data)));
    }
    ByteWriter commit(kCommitPayloadSize);
    commit.PutU32(static_cast<std::uint32_t>(writes.size()));
    images.push_back(
        BuildRecord(seq, kKindCommit, 0, ByteSpan(commit.buffer())));
  }
  RGPD_RETURN_IF_ERROR(WriteRecordImages(images));
  RGPD_METRIC_COUNT("inodefs.journal.commits");
  RGPD_METRIC_COUNT_N("inodefs.journal.bytes", bytes_logged_ - before);
  BytesPerCommitHistogram().Observe(bytes_logged_ - before);
  return RetryIo(retry_, [&] { return device_.Flush(); });
}

Status Journal::PersistSuperblock() {
  Bytes block;
  RGPD_RETURN_IF_ERROR(
      RetryIo(retry_, [&] { return device_.ReadBlock(0, block); }));
  sb_.EncodeInto(block);
  RGPD_RETURN_IF_ERROR(RetryIo(
      retry_, [&] { return device_.WriteBlock(0, block); }));
  // The superblock must be durable BEFORE any old record is destroyed;
  // a write sitting in a volatile disk cache protects nothing.
  return RetryIo(retry_, [&] { return device_.Flush(); });
}

Result<std::vector<ReplayedWrite>> Journal::Replay() {
  /// One recovered block write: either a whole image (legacy data
  /// record) or an extent group to reconstruct over its base.
  struct RecoveredWrite {
    BlockIndex block = 0;
    bool whole = false;
    Bytes data;  ///< whole: full image; extents: concatenated range bytes
    std::uint8_t base = JournalWrite::kBaseZero;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> extents;
  };
  struct PendingTxn {
    std::vector<RecoveredWrite> writes;
    bool committed = false;
    std::uint64_t expected_writes = 0;  // from the commit record
    std::uint64_t end_block = 0;  // region-relative block after the commit
  };
  std::map<std::uint64_t, PendingTxn> txns;
  replay_stats_ = ReplayStats{};
  // Transactions below the persisted watermark are durably in place;
  // re-applying their (older) block images would revert newer in-place
  // state whose own journal records were wrapped over or scrubbed.
  const std::uint64_t checkpointed = sb_.journal_checkpointed_seq;

  Bytes block;
  std::uint64_t offset = 0;
  while (offset < sb_.journal_blocks) {
    RGPD_RETURN_IF_ERROR(RetryIo(retry_, [&] {
      return device_.ReadBlock(sb_.journal_start + offset, block);
    }));
    ByteReader header(block);
    auto magic = header.GetU32();
    if (!magic.ok() || *magic != kRecordMagic) {
      ++offset;
      continue;
    }
    auto seq = header.GetU64();
    auto kind = header.GetU8();
    auto target = header.GetU64();
    auto payload_len = header.GetU32();
    if (!seq.ok() || !kind.ok() || !target.ok() || !payload_len.ok()) {
      ++replay_stats_.corrupt_records;
      ++offset;
      continue;
    }
    const std::uint64_t blocks = RecordBlocks(*payload_len);
    if (offset + blocks > sb_.journal_blocks) {
      ++replay_stats_.corrupt_records;
      ++offset;
      continue;
    }
    // Assemble the full record image to verify its CRC.
    Bytes image;
    image.reserve(blocks * sb_.block_size);
    image.insert(image.end(), block.begin(), block.end());
    for (std::uint64_t i = 1; i < blocks; ++i) {
      Bytes next;
      RGPD_RETURN_IF_ERROR(RetryIo(retry_, [&] {
        return device_.ReadBlock(sb_.journal_start + offset + i, next);
      }));
      image.insert(image.end(), next.begin(), next.end());
    }
    const std::size_t record_size = kHeaderSize + *payload_len + kCrcSize;
    if (record_size > image.size()) {
      ++replay_stats_.corrupt_records;
      ++offset;
      continue;
    }
    ByteReader crc_reader(
        ByteSpan(image.data() + record_size - kCrcSize, kCrcSize));
    const std::uint32_t stored_crc = *crc_reader.GetU32();
    const std::uint32_t computed_crc =
        Crc32(ByteSpan(image.data(), record_size - kCrcSize));
    if (stored_crc != computed_crc) {
      // A torn extent record dies here: its CRC is its commit, so the
      // whole transaction vanishes rather than half-applying.
      ++replay_stats_.corrupt_records;
      ++offset;
      continue;
    }

    const ByteSpan payload(image.data() + kHeaderSize, *payload_len);
    if (*kind == kKindData) {
      RecoveredWrite write;
      write.block = *target;
      write.whole = true;
      write.data.assign(payload.begin(), payload.end());
      txns[*seq].writes.push_back(std::move(write));
    } else if (*kind == kKindCommit) {
      if (*payload_len != kCommitPayloadSize) {
        // Malformed commit (CRC fine but wrong shape): treat as corrupt
        // rather than guessing a count.
        ++replay_stats_.corrupt_records;
        offset += blocks;
        continue;
      }
      ByteReader reader(payload);
      PendingTxn& txn = txns[*seq];
      txn.committed = true;
      txn.expected_writes = *reader.GetU32();
      txn.end_block = offset + blocks;
    } else if (*kind == kKindExtents) {
      // Parse target extent groups; any framing violation poisons the
      // whole record (the CRC said the bytes are intact, so a framing
      // error means a format we do not understand — never guess).
      ByteReader reader(payload);
      std::vector<RecoveredWrite> writes;
      bool ok = true;
      for (std::uint64_t g = 0; ok && g < *target; ++g) {
        RecoveredWrite write;
        auto block_index = reader.GetU64();
        auto base = reader.GetU8();
        auto extent_count = reader.GetU16();
        if (!block_index.ok() || !base.ok() || !extent_count.ok() ||
            *base > JournalWrite::kBaseZero) {
          ok = false;
          break;
        }
        write.block = *block_index;
        write.base = *base;
        std::size_t data_bytes = 0;
        for (std::uint16_t e = 0; ok && e < *extent_count; ++e) {
          auto off = reader.GetU32();
          auto len = reader.GetU32();
          if (!off.ok() || !len.ok() || *len == 0 ||
              std::uint64_t(*off) + *len > sb_.block_size) {
            ok = false;
            break;
          }
          write.extents.emplace_back(*off, *len);
          data_bytes += *len;
        }
        if (!ok) break;
        auto data = reader.GetRaw(data_bytes);
        if (!data.ok()) {
          ok = false;
          break;
        }
        write.data.assign(data->begin(), data->end());
        writes.push_back(std::move(write));
      }
      if (!ok) {
        ++replay_stats_.corrupt_records;
        offset += blocks;
        continue;
      }
      PendingTxn& txn = txns[*seq];
      txn.writes = std::move(writes);
      txn.committed = true;  // a valid CRC is the commit
      txn.expected_writes = *target;
      txn.end_block = offset + blocks;
    }
    offset += blocks;
  }

  std::vector<ReplayedWrite> out;
  std::uint64_t resume_head = 0;
  std::uint64_t best_seq = 0;
  bool any_committed = false;
  std::uint64_t max_seq = sb_.journal_seq;
  /// Newest reconstructed image per block, so chained transactions on
  /// one block compose: a later extent record bases on its predecessor's
  /// image, not on the (older) on-device state.
  std::map<BlockIndex, Bytes> latest;
  for (auto& [seq, txn] : txns) {
    max_seq = std::max(max_seq, seq + 1);
    if (!txn.committed) {
      // Torn transaction (crash between data records and commit): discard.
      ++replay_stats_.torn_txns;
      continue;
    }
    // Resume after the NEWEST committed transaction, stale or not. An
    // older (already checkpointed) transaction can sit at a higher block
    // offset when the newer one wrapped to the region start; resuming
    // past the older one would overwrite the newest records while
    // leaving stale ones in the region.
    if (!any_committed || seq > best_seq) {
      best_seq = seq;
      resume_head = txn.end_block;
      any_committed = true;
    }
    if (seq < checkpointed) {
      // Already durably checkpointed — deliberately retained history
      // (the Fig-2 leak experiment), never re-applied. Skipping is safe
      // for later device-based extents too: the device provably holds
      // this transaction's effects (or newer).
      ++replay_stats_.stale_txns;
      continue;
    }
    if (txn.writes.size() != txn.expected_writes) {
      // Commit present but data records missing — a mid-transaction wrap
      // overwrote them (or their blocks were torn). Applying the partial
      // set would surface exactly the partially-applied-transaction state
      // journaling exists to prevent; discard the whole transaction.
      ++replay_stats_.incomplete_txns;
      continue;
    }
    ++replay_stats_.committed_txns;
    for (RecoveredWrite& w : txn.writes) {
      Bytes reconstructed;
      if (w.whole) {
        reconstructed = std::move(w.data);
      } else {
        const auto it = latest.find(w.block);
        if (it != latest.end()) {
          reconstructed = it->second;
        } else if (w.base == JournalWrite::kBaseZero) {
          reconstructed.assign(sb_.block_size, 0);
        } else {
          RGPD_RETURN_IF_ERROR(RetryIo(retry_, [&] {
            return device_.ReadBlock(w.block, reconstructed);
          }));
        }
        if (reconstructed.size() != sb_.block_size) {
          reconstructed.resize(sb_.block_size, 0);
        }
        std::size_t pos = 0;
        for (const auto& [off, len] : w.extents) {
          std::memcpy(reconstructed.data() + off, w.data.data() + pos, len);
          pos += len;
        }
      }
      latest[w.block] = reconstructed;
      ReplayedWrite write;
      write.seq = seq;
      write.block = w.block;
      write.data = std::move(reconstructed);
      out.push_back(std::move(write));
    }
  }
  replay_stats_.replayed_writes = out.size();
  sb_.journal_head = resume_head;
  sb_.journal_seq = max_seq;
  return out;
}

Status Journal::Scrub() {
  RGPD_METRIC_COUNT("inodefs.journal.scrubs");
  RGPD_METRIC_SCOPED_LATENCY("inodefs.journal.scrub_latency_ns");
  // A scrub interrupted by a crash leaves a partially zeroed region: the
  // surviving tail records must never be replayed (they are the OLDEST
  // part of the history). Persist the watermark covering them first.
  RGPD_RETURN_IF_ERROR(PersistSuperblock());
  const Bytes zero(sb_.block_size, 0);
  for (std::uint64_t i = 0; i < sb_.journal_blocks; ++i) {
    RGPD_RETURN_IF_ERROR(RetryIo(
        retry_, [&] { return device_.WriteBlock(sb_.journal_start + i, zero); }));
    // A cached journal block would keep the pre-scrub history readable;
    // drop it along with the on-medium bytes.
    device_.InvalidateCached(sb_.journal_start + i);
  }
  sb_.journal_head = 0;
  return RetryIo(retry_, [&] { return device_.Flush(); });
}

}  // namespace rgpdos::inodefs
