#include "inodefs/journal.hpp"

#include <algorithm>
#include <map>

#include "common/crc32.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::inodefs {

namespace {

constexpr std::uint32_t kRecordMagic = 0x4C4E524A;  // "JRNL"
constexpr std::uint8_t kKindData = 1;
constexpr std::uint8_t kKindCommit = 2;

// magic u32 | seq u64 | kind u8 | target u64 | payload_len u32
constexpr std::size_t kHeaderSize = 4 + 8 + 1 + 8 + 4;
constexpr std::size_t kCrcSize = 4;
// The commit record's payload: u32 count of the transaction's data
// records. Replay discards commits whose recovered record count differs.
constexpr std::size_t kCommitPayloadSize = 4;

}  // namespace

std::uint64_t Journal::RecordBlocks(std::size_t payload_size) const {
  const std::size_t total = kHeaderSize + payload_size + kCrcSize;
  return (total + sb_.block_size - 1) / sb_.block_size;
}

Status Journal::WriteRecord(std::uint64_t seq, std::uint8_t kind,
                            BlockIndex target, ByteSpan payload) {
  const std::uint64_t blocks_needed = RecordBlocks(payload.size());
  if (blocks_needed > sb_.journal_blocks) {
    return ResourceExhausted("journal region smaller than one record");
  }
  // Head is a block offset within the region; wrap if the record does
  // not fit in the tail (old records there are simply overwritten later).
  // Wrapping starts destroying old records, so the checkpoint watermark
  // covering them must reach the medium first (see PersistSuperblock).
  if (sb_.journal_head + blocks_needed > sb_.journal_blocks) {
    RGPD_RETURN_IF_ERROR(PersistSuperblock());
    sb_.journal_head = 0;
  }

  ByteWriter w(kHeaderSize + payload.size() + kCrcSize);
  w.PutU32(kRecordMagic);
  w.PutU64(seq);
  w.PutU8(kind);
  w.PutU64(target);
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutRaw(payload);
  const std::uint32_t crc = Crc32(w.buffer());
  w.PutU32(crc);

  Bytes image = w.Take();
  image.resize(blocks_needed * sb_.block_size, 0);
  for (std::uint64_t i = 0; i < blocks_needed; ++i) {
    const BlockIndex device_block = sb_.journal_start + sb_.journal_head + i;
    RGPD_RETURN_IF_ERROR(RetryIo(retry_, [&] {
      return device_.WriteBlock(
          device_block,
          ByteSpan(image.data() + i * sb_.block_size, sb_.block_size));
    }));
  }
  sb_.journal_head += blocks_needed;
  bytes_logged_ += image.size();
  return Status::Ok();
}

Status Journal::AppendTransaction(
    const std::vector<std::pair<BlockIndex, Bytes>>& writes) {
  RGPD_METRIC_SCOPED_LATENCY("inodefs.journal.commit_latency_ns");
  // Refuse transactions larger than the whole region: the head would wrap
  // over this transaction's OWN earlier records mid-append, and the commit
  // would then be discarded at replay as incomplete — silent data loss.
  std::uint64_t total_blocks = RecordBlocks(kCommitPayloadSize);
  for (const auto& [block, data] : writes) {
    (void)block;
    total_blocks += RecordBlocks(data.size());
  }
  if (total_blocks > sb_.journal_blocks) {
    return ResourceExhausted("transaction larger than the journal region");
  }
  const std::uint64_t before = bytes_logged_;
  const std::uint64_t seq = sb_.journal_seq++;
  for (const auto& [block, data] : writes) {
    RGPD_RETURN_IF_ERROR(WriteRecord(seq, kKindData, block, data));
  }
  ByteWriter commit(kCommitPayloadSize);
  commit.PutU32(static_cast<std::uint32_t>(writes.size()));
  RGPD_RETURN_IF_ERROR(
      WriteRecord(seq, kKindCommit, 0, ByteSpan(commit.buffer())));
  RGPD_METRIC_COUNT("inodefs.journal.commits");
  RGPD_METRIC_COUNT_N("inodefs.journal.bytes", bytes_logged_ - before);
  return RetryIo(retry_, [&] { return device_.Flush(); });
}

Status Journal::PersistSuperblock() {
  Bytes block;
  RGPD_RETURN_IF_ERROR(
      RetryIo(retry_, [&] { return device_.ReadBlock(0, block); }));
  sb_.EncodeInto(block);
  RGPD_RETURN_IF_ERROR(RetryIo(
      retry_, [&] { return device_.WriteBlock(0, block); }));
  // The superblock must be durable BEFORE any old record is destroyed;
  // a write sitting in a volatile disk cache protects nothing.
  return RetryIo(retry_, [&] { return device_.Flush(); });
}

Result<std::vector<ReplayedWrite>> Journal::Replay() {
  struct PendingTxn {
    std::vector<ReplayedWrite> writes;
    bool committed = false;
    std::uint64_t expected_writes = 0;  // from the commit record
    std::uint64_t end_block = 0;  // region-relative block after the commit
  };
  std::map<std::uint64_t, PendingTxn> txns;
  replay_stats_ = ReplayStats{};
  // Transactions below the persisted watermark are durably in place;
  // re-applying their (older) block images would revert newer in-place
  // state whose own journal records were wrapped over or scrubbed.
  const std::uint64_t checkpointed = sb_.journal_checkpointed_seq;

  Bytes block;
  std::uint64_t offset = 0;
  while (offset < sb_.journal_blocks) {
    RGPD_RETURN_IF_ERROR(RetryIo(retry_, [&] {
      return device_.ReadBlock(sb_.journal_start + offset, block);
    }));
    ByteReader header(block);
    auto magic = header.GetU32();
    if (!magic.ok() || *magic != kRecordMagic) {
      ++offset;
      continue;
    }
    auto seq = header.GetU64();
    auto kind = header.GetU8();
    auto target = header.GetU64();
    auto payload_len = header.GetU32();
    if (!seq.ok() || !kind.ok() || !target.ok() || !payload_len.ok()) {
      ++replay_stats_.corrupt_records;
      ++offset;
      continue;
    }
    const std::uint64_t blocks = RecordBlocks(*payload_len);
    if (offset + blocks > sb_.journal_blocks) {
      ++replay_stats_.corrupt_records;
      ++offset;
      continue;
    }
    // Assemble the full record image to verify its CRC.
    Bytes image;
    image.reserve(blocks * sb_.block_size);
    image.insert(image.end(), block.begin(), block.end());
    for (std::uint64_t i = 1; i < blocks; ++i) {
      Bytes next;
      RGPD_RETURN_IF_ERROR(RetryIo(retry_, [&] {
        return device_.ReadBlock(sb_.journal_start + offset + i, next);
      }));
      image.insert(image.end(), next.begin(), next.end());
    }
    const std::size_t record_size = kHeaderSize + *payload_len + kCrcSize;
    if (record_size > image.size()) {
      ++replay_stats_.corrupt_records;
      ++offset;
      continue;
    }
    ByteReader crc_reader(
        ByteSpan(image.data() + record_size - kCrcSize, kCrcSize));
    const std::uint32_t stored_crc = *crc_reader.GetU32();
    const std::uint32_t computed_crc =
        Crc32(ByteSpan(image.data(), record_size - kCrcSize));
    if (stored_crc != computed_crc) {
      ++replay_stats_.corrupt_records;
      ++offset;
      continue;
    }

    PendingTxn& txn = txns[*seq];
    if (*kind == kKindData) {
      ReplayedWrite write;
      write.seq = *seq;
      write.block = *target;
      write.data.assign(image.begin() + kHeaderSize,
                        image.begin() + kHeaderSize + *payload_len);
      txn.writes.push_back(std::move(write));
    } else if (*kind == kKindCommit) {
      if (*payload_len != kCommitPayloadSize) {
        // Malformed commit (CRC fine but wrong shape): treat as corrupt
        // rather than guessing a count.
        ++replay_stats_.corrupt_records;
        offset += blocks;
        continue;
      }
      ByteReader payload(
          ByteSpan(image.data() + kHeaderSize, kCommitPayloadSize));
      txn.committed = true;
      txn.expected_writes = *payload.GetU32();
      txn.end_block = offset + blocks;
    }
    offset += blocks;
  }

  std::vector<ReplayedWrite> out;
  std::uint64_t resume_head = 0;
  std::uint64_t best_seq = 0;
  bool any_committed = false;
  std::uint64_t max_seq = sb_.journal_seq;
  for (auto& [seq, txn] : txns) {
    max_seq = std::max(max_seq, seq + 1);
    if (!txn.committed) {
      // Torn transaction (crash between data records and commit): discard.
      ++replay_stats_.torn_txns;
      continue;
    }
    // Resume after the NEWEST committed transaction, stale or not. An
    // older (already checkpointed) transaction can sit at a higher block
    // offset when the newer one wrapped to the region start; resuming
    // past the older one would overwrite the newest records while
    // leaving stale ones in the region.
    if (!any_committed || seq > best_seq) {
      best_seq = seq;
      resume_head = txn.end_block;
      any_committed = true;
    }
    if (seq < checkpointed) {
      // Already durably checkpointed — deliberately retained history
      // (the Fig-2 leak experiment), never re-applied.
      ++replay_stats_.stale_txns;
      continue;
    }
    if (txn.writes.size() != txn.expected_writes) {
      // Commit present but data records missing — a mid-transaction wrap
      // overwrote them (or their blocks were torn). Applying the partial
      // set would surface exactly the partially-applied-transaction state
      // journaling exists to prevent; discard the whole transaction.
      ++replay_stats_.incomplete_txns;
      continue;
    }
    ++replay_stats_.committed_txns;
    for (ReplayedWrite& w : txn.writes) out.push_back(std::move(w));
  }
  replay_stats_.replayed_writes = out.size();
  sb_.journal_head = resume_head;
  sb_.journal_seq = max_seq;
  return out;
}

Status Journal::Scrub() {
  RGPD_METRIC_COUNT("inodefs.journal.scrubs");
  RGPD_METRIC_SCOPED_LATENCY("inodefs.journal.scrub_latency_ns");
  // A scrub interrupted by a crash leaves a partially zeroed region: the
  // surviving tail records must never be replayed (they are the OLDEST
  // part of the history). Persist the watermark covering them first.
  RGPD_RETURN_IF_ERROR(PersistSuperblock());
  const Bytes zero(sb_.block_size, 0);
  for (std::uint64_t i = 0; i < sb_.journal_blocks; ++i) {
    RGPD_RETURN_IF_ERROR(RetryIo(
        retry_, [&] { return device_.WriteBlock(sb_.journal_start + i, zero); }));
    // A cached journal block would keep the pre-scrub history readable;
    // drop it along with the on-medium bytes.
    device_.InvalidateCached(sb_.journal_start + i);
  }
  sb_.journal_head = 0;
  return RetryIo(retry_, [&] { return device_.Flush(); });
}

}  // namespace rgpdos::inodefs
