#include "inodefs/filesystem.hpp"

namespace rgpdos::inodefs {

Result<FileSystem> FileSystem::Create(InodeStore* store) {
  RGPD_ASSIGN_OR_RETURN(InodeId root,
                        store->AllocInode(InodeKind::kDirectory));
  FileSystem fs(store, root);
  RGPD_RETURN_IF_ERROR(fs.StoreDir(root, {}));
  // Record the root in the superblock (persisted on Sync()).
  store->SetRootDir(root);
  RGPD_RETURN_IF_ERROR(store->Sync());
  return fs;
}

Result<FileSystem> FileSystem::Open(InodeStore* store) {
  const InodeId root = store->superblock().root_dir;
  if (root == kInvalidInode) {
    return FailedPrecondition("store has no root directory");
  }
  RGPD_ASSIGN_OR_RETURN(Inode inode, store->GetInode(root));
  if (inode.kind != InodeKind::kDirectory) {
    return Corruption("root inode is not a directory");
  }
  return FileSystem(store, root);
}

Result<std::vector<std::string>> FileSystem::SplitPath(
    std::string_view path) {
  if (path.empty() || path.front() != '/') {
    return InvalidArgument("path must be absolute");
  }
  std::vector<std::string> parts;
  std::size_t start = 1;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string_view::npos ? path.size()
                                                            : slash;
    if (end > start) {
      const std::string_view part = path.substr(start, end - start);
      if (part == "." || part == "..") {
        return InvalidArgument("'.' and '..' are not supported");
      }
      parts.emplace_back(part);
    }
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return parts;
}

Result<std::vector<DirEntry>> FileSystem::LoadDir(InodeId dir) const {
  RGPD_ASSIGN_OR_RETURN(Bytes raw, store_->ReadAll(dir));
  std::vector<DirEntry> entries;
  ByteReader r(raw);
  RGPD_ASSIGN_OR_RETURN(std::uint64_t count, r.GetVarint());
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DirEntry e;
    RGPD_ASSIGN_OR_RETURN(e.name, r.GetString());
    RGPD_ASSIGN_OR_RETURN(e.inode, r.GetU32());
    RGPD_ASSIGN_OR_RETURN(std::uint8_t kind, r.GetU8());
    e.kind = static_cast<InodeKind>(kind);
    entries.push_back(std::move(e));
  }
  return entries;
}

Status FileSystem::StoreDir(InodeId dir,
                            const std::vector<DirEntry>& entries) {
  ByteWriter w;
  w.PutVarint(entries.size());
  for (const DirEntry& e : entries) {
    w.PutString(e.name);
    w.PutU32(e.inode);
    w.PutU8(static_cast<std::uint8_t>(e.kind));
  }
  return store_->WriteAll(dir, w.buffer());
}

Result<FileSystem::ParentRef> FileSystem::ResolveParent(
    std::string_view path) const {
  RGPD_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) return InvalidArgument("path names the root");
  InodeId dir = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    RGPD_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDir(dir));
    bool found = false;
    for (const DirEntry& e : entries) {
      if (e.name == parts[i]) {
        if (e.kind != InodeKind::kDirectory) {
          return InvalidArgument("path component is not a directory: " +
                                 parts[i]);
        }
        dir = e.inode;
        found = true;
        break;
      }
    }
    if (!found) return NotFound("no such directory: " + parts[i]);
  }
  return ParentRef{dir, parts.back()};
}

Result<InodeId> FileSystem::Lookup(std::string_view path) const {
  RGPD_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) return root_;
  RGPD_ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  RGPD_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDir(ref.dir));
  for (const DirEntry& e : entries) {
    if (e.name == ref.leaf) return e.inode;
  }
  return NotFound("no such file: " + std::string(path));
}

Status FileSystem::Mkdir(std::string_view path) {
  RGPD_ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  RGPD_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDir(ref.dir));
  for (const DirEntry& e : entries) {
    if (e.name == ref.leaf) return AlreadyExists(std::string(path));
  }
  RGPD_ASSIGN_OR_RETURN(InodeId dir,
                        store_->AllocInode(InodeKind::kDirectory));
  RGPD_RETURN_IF_ERROR(StoreDir(dir, {}));
  entries.push_back(DirEntry{ref.leaf, dir, InodeKind::kDirectory});
  return StoreDir(ref.dir, entries);
}

Result<InodeId> FileSystem::CreateFile(std::string_view path) {
  RGPD_ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  RGPD_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDir(ref.dir));
  for (const DirEntry& e : entries) {
    if (e.name == ref.leaf) return AlreadyExists(std::string(path));
  }
  RGPD_ASSIGN_OR_RETURN(InodeId file, store_->AllocInode(InodeKind::kFile));
  entries.push_back(DirEntry{ref.leaf, file, InodeKind::kFile});
  RGPD_RETURN_IF_ERROR(StoreDir(ref.dir, entries));
  return file;
}

Status FileSystem::WriteFile(std::string_view path, ByteSpan data) {
  auto existing = Lookup(path);
  InodeId file;
  if (existing.ok()) {
    file = *existing;
  } else if (existing.status().code() == StatusCode::kNotFound) {
    RGPD_ASSIGN_OR_RETURN(file, CreateFile(path));
  } else {
    return existing.status();
  }
  return store_->WriteAll(file, data);
}

Status FileSystem::AppendFile(std::string_view path, ByteSpan data) {
  auto existing = Lookup(path);
  InodeId file;
  if (existing.ok()) {
    file = *existing;
  } else if (existing.status().code() == StatusCode::kNotFound) {
    RGPD_ASSIGN_OR_RETURN(file, CreateFile(path));
  } else {
    return existing.status();
  }
  return store_->Append(file, data);
}

Result<Bytes> FileSystem::ReadFile(std::string_view path) const {
  RGPD_ASSIGN_OR_RETURN(InodeId file, Lookup(path));
  RGPD_ASSIGN_OR_RETURN(Inode inode, store_->GetInode(file));
  if (inode.kind == InodeKind::kDirectory) {
    return InvalidArgument("is a directory: " + std::string(path));
  }
  return store_->ReadAll(file);
}

Status FileSystem::Unlink(std::string_view path, bool scrub) {
  RGPD_ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  RGPD_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDir(ref.dir));
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->name != ref.leaf) continue;
    if (it->kind == InodeKind::kDirectory) {
      RGPD_ASSIGN_OR_RETURN(std::vector<DirEntry> children,
                            LoadDir(it->inode));
      if (!children.empty()) {
        return FailedPrecondition("directory not empty: " +
                                  std::string(path));
      }
    }
    RGPD_RETURN_IF_ERROR(store_->FreeInode(it->inode, scrub));
    entries.erase(it);
    return StoreDir(ref.dir, entries);
  }
  return NotFound("no such file: " + std::string(path));
}

Result<std::vector<DirEntry>> FileSystem::ReadDir(
    std::string_view path) const {
  RGPD_ASSIGN_OR_RETURN(InodeId dir, Lookup(path));
  RGPD_ASSIGN_OR_RETURN(Inode inode, store_->GetInode(dir));
  if (inode.kind != InodeKind::kDirectory) {
    return InvalidArgument("not a directory: " + std::string(path));
  }
  return LoadDir(dir);
}

Result<Inode> FileSystem::Stat(std::string_view path) const {
  RGPD_ASSIGN_OR_RETURN(InodeId id, Lookup(path));
  return store_->GetInode(id);
}

bool FileSystem::Exists(std::string_view path) const {
  return Lookup(path).ok();
}

}  // namespace rgpdos::inodefs
