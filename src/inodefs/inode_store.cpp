#include "inodefs/inode_store.hpp"

#include <algorithm>
#include <cstring>

#include "metrics/metrics.hpp"

namespace rgpdos::inodefs {

InodeStore::InodeStore(blockdev::BlockDevice* device, Superblock sb,
                       const Clock* clock, bool journal_enabled,
                       metrics::LockRank lock_rank,
                       const RetryPolicy& io_retry, bool journal_extents)
    : device_(device),
      sb_(sb),
      clock_(clock),
      journal_(*device, sb_),
      io_retry_(io_retry),
      journal_enabled_(journal_enabled),
      mu_(lock_rank, lock_rank == metrics::LockRank::kInodefsSensitive
                         ? "inodefs.store.sensitive"
                         : "inodefs.store") {
  journal_.set_retry_policy(io_retry_);
  journal_.set_extent_mode(journal_extents);
}

Status InodeStore::DevRead(BlockIndex index, Bytes& out) const {
  return RetryIo(io_retry_, [&] { return device_->ReadBlock(index, out); });
}

Status InodeStore::DevWrite(BlockIndex index, ByteSpan data) {
  return RetryIo(io_retry_, [&] { return device_->WriteBlock(index, data); });
}

Status InodeStore::DevFlush() {
  return RetryIo(io_retry_, [&] { return device_->Flush(); });
}

Status InodeStore::DevReadBatch(const std::vector<BlockIndex>& indexes,
                                std::vector<Bytes>& out) const {
  // Fast path: one amortised submission. On failure fall back to
  // per-block bounded retry — a whole-batch retry on transient-heavy
  // media re-runs EVERY block through the fault, so a batch wider than
  // the error period would fail all attempts.
  if (device_->ReadBatch(indexes, out).ok()) return Status::Ok();
  out.assign(indexes.size(), Bytes());
  for (std::size_t i = 0; i < indexes.size(); ++i) {
    RGPD_RETURN_IF_ERROR(DevRead(indexes[i], out[i]));
  }
  return Status::Ok();
}

Status InodeStore::DevWriteBatch(
    const std::vector<blockdev::BatchWrite>& writes) {
  // Every entry carries its full final image, so re-writing a torn
  // prefix is idempotent. Same degradation as DevReadBatch: batch once,
  // then per-block bounded retry if the submission failed.
  if (device_->WriteBatch(writes).ok()) return Status::Ok();
  for (const blockdev::BatchWrite& w : writes) {
    RGPD_RETURN_IF_ERROR(DevWrite(w.index, w.data));
  }
  return Status::Ok();
}

Status InodeStore::ReadBlockCoherent(BlockIndex index, Bytes& out) const {
  // group_depth_ > 0 implies the calling thread holds mu_ for the whole
  // scope, so the staging buffer is safe to read without further locking.
  if (group_depth_ > 0) {
    auto it = group_write_index_.find(index);
    if (it != group_write_index_.end()) {
      out = group_writes_[it->second].second;
      return Status::Ok();
    }
  }
  // Journal-committed but never checkpointed (crash_before_checkpoint_):
  // the logical image lives here, not on the medium, until Mount()
  // replays it. Serving it keeps extent preimages coherent with what
  // replay will reconstruct.
  if (!uncheckpointed_.empty()) {
    auto it = uncheckpointed_.find(index);
    if (it != uncheckpointed_.end()) {
      out = it->second;
      return Status::Ok();
    }
  }
  return DevRead(index, out);
}

Result<std::unique_ptr<InodeStore>> InodeStore::Format(
    blockdev::BlockDevice* device, const Options& options,
    const Clock* clock) {
  RGPD_ASSIGN_OR_RETURN(
      Superblock sb,
      Superblock::Plan(device->block_size(), device->block_count(),
                       options.inode_count, options.journal_blocks));

  std::unique_ptr<InodeStore> store(new InodeStore(
      device, sb, clock, options.journal_enabled, options.lock_rank,
      options.io_retry, options.journal_extents));

  // Zero metadata regions (bitmap + inode table + journal).
  const Bytes zero(sb.block_size, 0);
  for (BlockIndex b = sb.bitmap_start; b < sb.data_start; ++b) {
    RGPD_RETURN_IF_ERROR(store->DevWrite(b, zero));
  }
  store->bitmap_.assign((sb.block_count + 63) / 64, 0);
  // Mark all metadata blocks (including block 0) as used.
  for (BlockIndex b = 0; b < sb.data_start; ++b) store->BitmapSet(b, true);
  store->alloc_hint_ = sb.data_start;

  RGPD_RETURN_IF_ERROR(store->Sync());
  return store;
}

Result<std::unique_ptr<InodeStore>> InodeStore::Mount(
    blockdev::BlockDevice* device, const Clock* clock,
    metrics::LockRank lock_rank, const RetryPolicy& io_retry,
    bool journal_extents) {
  RGPD_METRIC_COUNT("inodefs.recovery.mounts");
  RGPD_METRIC_SCOPED_LATENCY("inodefs.recovery.mount_latency_ns");
  Bytes sb_block;
  RGPD_RETURN_IF_ERROR(
      RetryIo(io_retry, [&] { return device->ReadBlock(0, sb_block); }));
  RGPD_ASSIGN_OR_RETURN(Superblock sb, Superblock::Decode(sb_block));
  if (sb.block_size != device->block_size() ||
      sb.block_count != device->block_count()) {
    return Corruption("superblock geometry does not match device");
  }

  std::unique_ptr<InodeStore> store(
      new InodeStore(device, sb, clock, /*journal_enabled=*/true, lock_rank,
                     io_retry, journal_extents));

  // Recover committed-but-uncheckpointed transactions. Torn / incomplete
  // transactions never leave the journal, so the in-place image only ever
  // moves between transaction boundaries.
  std::vector<ReplayedWrite> writes;
  {
    RGPD_METRIC_SCOPED_LATENCY("inodefs.recovery.replay_latency_ns");
    RGPD_ASSIGN_OR_RETURN(writes, store->journal_.Replay());
    if (!writes.empty()) {
      // One batched submission; writes stay in (seq, log position) order
      // so a later image of the same block lands last.
      std::vector<blockdev::BatchWrite> batch;
      batch.reserve(writes.size());
      for (const ReplayedWrite& w : writes) {
        batch.push_back({w.block, ByteSpan(w.data.data(), w.data.size())});
      }
      RGPD_RETURN_IF_ERROR(store->DevWriteBatch(batch));
      RGPD_RETURN_IF_ERROR(store->DevFlush());
    }
    // Every transaction the scan found is now either applied in place or
    // discarded for good (torn/incomplete/stale): advance the watermark
    // and persist it so a crash loop never re-applies or reverts.
    store->sb_.journal_checkpointed_seq = store->sb_.journal_seq;
    if (!writes.empty()) {
      Bytes sb_out;
      RGPD_RETURN_IF_ERROR(store->DevRead(0, sb_out));
      store->sb_.EncodeInto(sb_out);
      RGPD_RETURN_IF_ERROR(store->DevWrite(0, sb_out));
      RGPD_RETURN_IF_ERROR(store->DevFlush());
    }
  }
  store->recovery_.replay = store->journal_.last_replay();
  store->recovery_.checkpointed_blocks = writes.size();
  RGPD_METRIC_COUNT_N("inodefs.recovery.replayed_writes", writes.size());
  RGPD_METRIC_COUNT_N("inodefs.recovery.torn_txns_discarded",
                      store->recovery_.replay.torn_txns);
  RGPD_METRIC_COUNT_N("inodefs.recovery.incomplete_txns_discarded",
                      store->recovery_.replay.incomplete_txns);
  RGPD_METRIC_COUNT_N("inodefs.recovery.corrupt_records",
                      store->recovery_.replay.corrupt_records);
  RGPD_METRIC_COUNT_N("inodefs.recovery.stale_txns_skipped",
                      store->recovery_.replay.stale_txns);
  RGPD_RETURN_IF_ERROR(store->LoadBitmap());
  store->alloc_hint_ = store->sb_.data_start;
  return store;
}

Status InodeStore::LoadBitmap() {
  bitmap_.assign((sb_.block_count + 63) / 64, 0);
  Bytes block;
  std::size_t bit = 0;
  for (std::uint64_t i = 0; i < sb_.bitmap_blocks && bit < sb_.block_count;
       ++i) {
    RGPD_RETURN_IF_ERROR(DevRead(sb_.bitmap_start + i, block));
    for (std::uint32_t j = 0; j < sb_.block_size && bit < sb_.block_count;
         ++j) {
      for (int k = 0; k < 8 && bit < sb_.block_count; ++k, ++bit) {
        if (block[j] & (1u << k)) {
          bitmap_[bit / 64] |= std::uint64_t(1) << (bit % 64);
        }
      }
    }
  }
  return Status::Ok();
}

Status InodeStore::Sync() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  // Superblock: read-modify-write so the slot not being written keeps
  // the previous valid image (torn-write safety).
  Bytes sb_block;
  RGPD_RETURN_IF_ERROR(DevRead(0, sb_block));
  sb_block.resize(sb_.block_size, 0);
  sb_.EncodeInto(sb_block);
  // Superblock + bitmap (rebuilt from the in-memory copy) go out as one
  // batched submission, then a single barrier.
  std::vector<Bytes> images;
  images.reserve(1 + sb_.bitmap_blocks);
  std::vector<blockdev::BatchWrite> batch;
  batch.reserve(1 + sb_.bitmap_blocks);
  images.push_back(std::move(sb_block));
  std::size_t bit = 0;
  for (std::uint64_t i = 0; i < sb_.bitmap_blocks; ++i) {
    Bytes block(sb_.block_size, 0);
    for (std::uint32_t j = 0; j < sb_.block_size && bit < sb_.block_count;
         ++j) {
      for (int k = 0; k < 8 && bit < sb_.block_count; ++k, ++bit) {
        if (BitmapGet(bit)) block[j] |= 1u << k;
      }
    }
    images.push_back(std::move(block));
  }
  batch.push_back({0, ByteSpan(images[0].data(), images[0].size())});
  for (std::uint64_t i = 0; i < sb_.bitmap_blocks; ++i) {
    const Bytes& img = images[1 + i];
    batch.push_back({sb_.bitmap_start + i, ByteSpan(img.data(), img.size())});
  }
  RGPD_RETURN_IF_ERROR(DevWriteBatch(batch));
  return DevFlush();
}

// ---- Txn -------------------------------------------------------------------

namespace {
bool IsZero(const Bytes& data) {
  for (std::uint8_t b : data) {
    if (b != 0) return false;
  }
  return true;
}
}  // namespace

Result<Bytes> InodeStore::Txn::ReadBlock(BlockIndex index) {
  auto it = writes_.find(index);
  if (it != writes_.end()) return it->second;
  Bytes out;
  RGPD_METRIC_COUNT("inodefs.block.reads");
  RGPD_RETURN_IF_ERROR(store_.ReadBlockCoherent(index, out));
  // First touch in extent mode: pin the pre-transaction image so Commit
  // can journal only the dirty ranges. If the image actually came from
  // the group staging buffer, the group's first-wins preimage merge
  // discards this entry in favour of the true on-device one.
  if (store_.journal_enabled_ && store_.journal_.extent_mode() &&
      preimages_.find(index) == preimages_.end()) {
    preimages_.emplace(index, Preimage{JournalWrite::kBaseDevice, out});
  }
  return out;
}

Status InodeStore::Txn::WriteBlock(BlockIndex index, Bytes data) {
  if (data.size() != store_.sb_.block_size) {
    return InvalidArgument("txn block write must be block-sized");
  }
  if (store_.journal_enabled_ && store_.journal_.extent_mode() &&
      !Touched(index)) {
    // Blind first write. An all-zero image is the fresh-allocation
    // pattern (MapFileBlock zero-fills, FreeDataBlock scrubs): replaying
    // from a zero base reproduces it exactly and can never resurrect
    // stale device bytes. Anything else has no usable base and journals
    // in full.
    preimages_.emplace(
        index, Preimage{IsZero(data) ? JournalWrite::kBaseZero
                                     : JournalWrite::kBaseNone,
                        Bytes()});
  }
  writes_[index] = std::move(data);
  return Status::Ok();
}

Status InodeStore::Txn::Commit() {
  if (writes_.empty()) return Status::Ok();
  RGPD_METRIC_COUNT("inodefs.txn.commits");
  RGPD_METRIC_COUNT_N("inodefs.block.writes", writes_.size());
  RGPD_METRIC_SCOPED_LATENCY("inodefs.txn.commit_latency_ns");
  if (store_.journal_enabled_) {
    if (store_.group_depth_ > 0) {
      // Inside a GroupCommitScope: stage everything — journal copy AND
      // in-place writes — into the group buffer. Nothing reaches the
      // device until the scope's combined journal record commits
      // (write-ahead ordering); reads inside the scope observe the
      // staged blocks through ReadBlockCoherent.
      for (const auto& [block, data] : writes_) {
        auto pre = preimages_.find(block);
        store_.StageGroupWrite(
            block, data, pre == preimages_.end() ? nullptr : &pre->second);
      }
      writes_.clear();
      preimages_.clear();
      return Status::Ok();
    }
    std::vector<JournalWrite> log;
    log.reserve(writes_.size());
    for (const auto& [block, data] : writes_) {
      JournalWrite w;
      w.block = block;
      w.data = data;
      auto pre = preimages_.find(block);
      if (pre != preimages_.end()) {
        w.base = pre->second.base;
        if (w.base == JournalWrite::kBaseDevice) {
          w.preimage = pre->second.data;
        }
      }
      log.push_back(std::move(w));
    }
    RGPD_RETURN_IF_ERROR(store_.journal_.AppendTransaction(log));
  }
  if (store_.crash_before_checkpoint_) {
    // Simulated power loss after the journal commit: the in-place writes
    // never happen; Mount() must recover them. Keep the committed images
    // in the page-cache overlay so later transactions (and their extent
    // preimages) see the logical state replay will reconstruct.
    for (auto& [block, data] : writes_) {
      store_.uncheckpointed_[block] = std::move(data);
    }
    writes_.clear();
    preimages_.clear();
    return Status::Ok();
  }
  {
    std::vector<blockdev::BatchWrite> batch;
    batch.reserve(writes_.size());
    for (const auto& [block, data] : writes_) {
      batch.push_back({block, ByteSpan(data.data(), data.size())});
    }
    RGPD_RETURN_IF_ERROR(store_.DevWriteBatch(batch));
  }
  if (!store_.uncheckpointed_.empty()) {
    // The medium just caught up for these blocks; drop the stale overlay
    // images so reads fall through to the device again.
    for (const auto& [block, data] : writes_) {
      store_.uncheckpointed_.erase(block);
    }
  }
  writes_.clear();
  preimages_.clear();
  RGPD_RETURN_IF_ERROR(store_.DevFlush());
  if (store_.journal_enabled_) {
    // Every journaled transaction so far is now durably in place; move
    // the replay watermark past them (persisted lazily, before the next
    // journal wrap or scrub destroys their records).
    store_.sb_.journal_checkpointed_seq = store_.sb_.journal_seq;
  }
  return Status::Ok();
}

// ---- group commit ----------------------------------------------------------

void InodeStore::StageGroupWrite(BlockIndex block, const Bytes& data,
                                 const Preimage* preimage) {
  auto it = group_write_index_.find(block);
  if (it != group_write_index_.end()) {
    // Later write to the same block supersedes: replay applies the final
    // image either way, and the journal record stays minimal. The
    // preimage does NOT update — the group journals the diff against the
    // state before the whole group, which the first stager captured.
    group_writes_[it->second].second = data;
    return;
  }
  group_write_index_.emplace(block, group_writes_.size());
  group_writes_.emplace_back(block, data);
  if (journal_.extent_mode()) {
    group_preimages_.emplace(
        block, preimage != nullptr
                   ? *preimage
                   : Preimage{JournalWrite::kBaseNone, Bytes()});
  }
}

InodeStore::GroupCommitScope::GroupCommitScope(InodeStore& store)
    : store_(store) {
  store_.mu_.lock();
  ++store_.group_depth_;
}

Status InodeStore::GroupCommitScope::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  Status status = Status::Ok();
  if (--store_.group_depth_ == 0) {
    if (store_.journal_enabled_ && !store_.group_writes_.empty()) {
      RGPD_METRIC_COUNT("inodefs.group_commit.flushes");
      RGPD_METRIC_COUNT_N("inodefs.group_commit.blocks",
                          store_.group_writes_.size());
      std::vector<JournalWrite> log;
      log.reserve(store_.group_writes_.size());
      for (const auto& [block, data] : store_.group_writes_) {
        JournalWrite w;
        w.block = block;
        w.data = data;
        auto pre = store_.group_preimages_.find(block);
        if (pre != store_.group_preimages_.end()) {
          w.base = pre->second.base;
          if (w.base == JournalWrite::kBaseDevice) {
            w.preimage = pre->second.data;
          }
        }
        log.push_back(std::move(w));
      }
      status = store_.journal_.AppendTransaction(log);
      // Checkpoint only after the journal record is durable: a crash up
      // to this point leaves the medium untouched by the group, a crash
      // after it is recovered by replay. Never before — checkpointing
      // first would expose a partially-applied group with no journal
      // record to finish it.
      if (status.ok() && !store_.crash_before_checkpoint_) {
        std::vector<blockdev::BatchWrite> batch;
        batch.reserve(store_.group_writes_.size());
        for (const auto& [block, data] : store_.group_writes_) {
          batch.push_back({block, ByteSpan(data.data(), data.size())});
        }
        status = store_.DevWriteBatch(batch);
        if (status.ok()) status = store_.DevFlush();
        if (status.ok()) {
          // As in Txn::Commit: the group is durably checkpointed, so its
          // journal record (and everything older) is replay-stale.
          store_.sb_.journal_checkpointed_seq = store_.sb_.journal_seq;
          if (!store_.uncheckpointed_.empty()) {
            for (const auto& [block, data] : store_.group_writes_) {
              store_.uncheckpointed_.erase(block);
            }
          }
        }
      } else if (status.ok()) {
        // Simulated power loss: the group's images stay off the medium
        // but remain visible through the page-cache overlay, as in
        // Txn::Commit.
        for (auto& [block, data] : store_.group_writes_) {
          store_.uncheckpointed_[block] = std::move(data);
        }
      }
    }
    store_.group_writes_.clear();
    store_.group_write_index_.clear();
    store_.group_preimages_.clear();
  }
  store_.mu_.unlock();
  return status;
}

InodeStore::GroupCommitScope::~GroupCommitScope() {
  const Status status = Finish();
  (void)status;  // early-exit path: the caller's error already propagates
}

// ---- bitmap ----------------------------------------------------------------

bool InodeStore::BitmapGet(BlockIndex block) const {
  return (bitmap_[block / 64] >> (block % 64)) & 1;
}

void InodeStore::BitmapSet(BlockIndex block, bool used) {
  if (used) {
    bitmap_[block / 64] |= std::uint64_t(1) << (block % 64);
  } else {
    bitmap_[block / 64] &= ~(std::uint64_t(1) << (block % 64));
  }
}

Status InodeStore::StageBitmapBlock(BlockIndex data_block, Txn& txn) {
  // Rebuild the single bitmap block covering `data_block` from memory.
  const std::uint64_t bits_per_block = std::uint64_t(sb_.block_size) * 8;
  const std::uint64_t bitmap_block = data_block / bits_per_block;
  const BlockIndex target = sb_.bitmap_start + bitmap_block;
  if (journal_enabled_ && journal_.extent_mode() && !txn.Touched(target)) {
    // The rebuild below writes blind; without a pinned preimage an
    // alloc/free would journal the whole bitmap block every transaction.
    // Read it first so only the flipped bit's byte range gets logged.
    RGPD_RETURN_IF_ERROR(txn.ReadBlock(target).status());
  }
  Bytes image(sb_.block_size, 0);
  std::uint64_t bit = bitmap_block * bits_per_block;
  for (std::uint32_t j = 0; j < sb_.block_size && bit < sb_.block_count;
       ++j) {
    for (int k = 0; k < 8 && bit < sb_.block_count; ++k, ++bit) {
      if (BitmapGet(bit)) image[j] |= 1u << k;
    }
  }
  return txn.WriteBlock(target, std::move(image));
}

Result<BlockIndex> InodeStore::AllocDataBlock(Txn& txn) {
  const BlockIndex start = std::max<BlockIndex>(alloc_hint_, sb_.data_start);
  for (BlockIndex pass = 0; pass < 2; ++pass) {
    const BlockIndex from = pass == 0 ? start : sb_.data_start;
    const BlockIndex to = pass == 0 ? sb_.block_count : start;
    for (BlockIndex b = from; b < to; ++b) {
      if (!BitmapGet(b)) {
        BitmapSet(b, true);
        alloc_hint_ = b + 1;
        RGPD_RETURN_IF_ERROR(StageBitmapBlock(b, txn));
        return b;
      }
    }
  }
  return ResourceExhausted("no free data blocks");
}

Status InodeStore::FreeDataBlock(BlockIndex block, bool scrub, Txn& txn) {
  if (scrub) {
    // The zero image goes through the journal too, so the in-journal
    // history ends with zeros for this block.
    RGPD_RETURN_IF_ERROR(txn.WriteBlock(block, Bytes(sb_.block_size, 0)));
    // Purge any cached copy of the plaintext NOW, before the erasure is
    // acknowledged. The write-through zeros at commit would overwrite it
    // anyway; dropping the entry is belt and braces (and keeps freed
    // blocks from occupying cache capacity). We hold the store mutex, so
    // no reader of this store can re-fill the entry in between.
    device_->InvalidateCached(block);
  }
  BitmapSet(block, false);
  return StageBitmapBlock(block, txn);
}

// ---- inode table -----------------------------------------------------------

BlockIndex InodeStore::InodeBlock(InodeId id) const {
  const std::uint32_t per_block = sb_.block_size / kInodeDiskSize;
  return sb_.inode_table_start + id / per_block;
}

std::uint32_t InodeStore::InodeOffset(InodeId id) const {
  const std::uint32_t per_block = sb_.block_size / kInodeDiskSize;
  return (id % per_block) * kInodeDiskSize;
}

Status InodeStore::CheckId(InodeId id) const {
  if (id == kInvalidInode || id >= sb_.inode_count) {
    return InvalidArgument("inode id out of range");
  }
  return Status::Ok();
}

Result<Inode> InodeStore::LoadInode(InodeId id, Txn* txn) const {
  RGPD_RETURN_IF_ERROR(CheckId(id));
  Bytes block;
  if (txn != nullptr) {
    RGPD_ASSIGN_OR_RETURN(block, txn->ReadBlock(InodeBlock(id)));
  } else {
    RGPD_RETURN_IF_ERROR(ReadBlockCoherent(InodeBlock(id), block));
  }
  return Inode::Decode(
      ByteSpan(block.data() + InodeOffset(id), kInodeDiskSize));
}

Status InodeStore::StoreInode(InodeId id, const Inode& inode, Txn& txn) {
  RGPD_RETURN_IF_ERROR(CheckId(id));
  RGPD_ASSIGN_OR_RETURN(Bytes block, txn.ReadBlock(InodeBlock(id)));
  const Bytes image = inode.Encode();
  std::memcpy(block.data() + InodeOffset(id), image.data(), kInodeDiskSize);
  return txn.WriteBlock(InodeBlock(id), std::move(block));
}

Result<InodeId> InodeStore::AllocInode(InodeKind kind) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  Txn txn(*this);
  // First-fit from the hint (inode 0 is reserved as the invalid id);
  // FreeInode moves the hint back, so the scan is amortised O(1).
  for (InodeId id = std::max<InodeId>(inode_hint_, 1); id < sb_.inode_count;
       ++id) {
    RGPD_ASSIGN_OR_RETURN(Inode inode, LoadInode(id, &txn));
    if (inode.kind != InodeKind::kFree) continue;
    const std::uint64_t generation = inode.generation + 1;
    inode = Inode{};
    inode.kind = kind;
    inode.nlink = 1;
    inode.generation = generation;
    inode.ctime = inode.mtime = clock_->Now();
    RGPD_RETURN_IF_ERROR(StoreInode(id, inode, txn));
    RGPD_RETURN_IF_ERROR(txn.Commit());
    inode_hint_ = id + 1;
    return id;
  }
  return ResourceExhausted("inode table full");
}

Status InodeStore::FreeInode(InodeId id, bool scrub) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  RGPD_RETURN_IF_ERROR(Truncate(id, 0, scrub));
  Txn txn(*this);
  RGPD_ASSIGN_OR_RETURN(Inode inode, LoadInode(id, &txn));
  const std::uint64_t generation = inode.generation;
  inode = Inode{};
  inode.kind = InodeKind::kFree;
  inode.generation = generation;
  RGPD_RETURN_IF_ERROR(StoreInode(id, inode, txn));
  RGPD_RETURN_IF_ERROR(txn.Commit());
  inode_hint_ = std::min(inode_hint_, id);
  return Status::Ok();
}

Result<Inode> InodeStore::GetInode(InodeId id) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return LoadInode(id, nullptr);
}

Status InodeStore::PutInode(InodeId id, const Inode& inode) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  Txn txn(*this);
  RGPD_RETURN_IF_ERROR(StoreInode(id, inode, txn));
  return txn.Commit();
}

// ---- file block mapping ------------------------------------------------------

std::uint64_t InodeStore::MaxFileSize() const {
  const std::uint64_t ppb = sb_.block_size / 8;
  return (kDirectBlocks + ppb + ppb * ppb) * std::uint64_t(sb_.block_size);
}

namespace {
BlockIndex ReadPointer(const Bytes& block, std::uint64_t slot) {
  BlockIndex v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t(block[slot * 8 + i]) << (8 * i);
  }
  return v;
}

void WritePointer(Bytes& block, std::uint64_t slot, BlockIndex value) {
  for (int i = 0; i < 8; ++i) {
    block[slot * 8 + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}
}  // namespace

Result<BlockIndex> InodeStore::MapFileBlock(Inode& inode,
                                            std::uint64_t file_block,
                                            bool allocate, Txn& txn) {
  const auto fresh_block = [&]() -> Result<BlockIndex> {
    RGPD_ASSIGN_OR_RETURN(BlockIndex b, AllocDataBlock(txn));
    // Fresh blocks start zeroed so short reads are well-defined.
    RGPD_RETURN_IF_ERROR(txn.WriteBlock(b, Bytes(sb_.block_size, 0)));
    return b;
  };

  if (file_block < kDirectBlocks) {
    if (inode.direct[file_block] == 0) {
      if (!allocate) return NotFound("file block not mapped");
      RGPD_ASSIGN_OR_RETURN(inode.direct[file_block], fresh_block());
    }
    return inode.direct[file_block];
  }

  const std::uint64_t ppb = sb_.block_size / 8;

  // Walk a pointer slot within an indirect block, allocating the pointee
  // on demand.
  const auto walk = [&](BlockIndex indirect_block_index,
                        std::uint64_t slot) -> Result<BlockIndex> {
    RGPD_ASSIGN_OR_RETURN(Bytes image, txn.ReadBlock(indirect_block_index));
    BlockIndex target = ReadPointer(image, slot);
    if (target == 0) {
      if (!allocate) return NotFound("file block not mapped");
      RGPD_ASSIGN_OR_RETURN(target, fresh_block());
      WritePointer(image, slot, target);
      RGPD_RETURN_IF_ERROR(
          txn.WriteBlock(indirect_block_index, std::move(image)));
    }
    return target;
  };

  const std::uint64_t single_slot = file_block - kDirectBlocks;
  if (single_slot < ppb) {
    if (inode.indirect == 0) {
      if (!allocate) return NotFound("file block not mapped");
      RGPD_ASSIGN_OR_RETURN(inode.indirect, fresh_block());
    }
    return walk(inode.indirect, single_slot);
  }

  const std::uint64_t double_slot = single_slot - ppb;
  if (double_slot >= ppb * ppb) {
    return OutOfRange("file exceeds double-indirect capacity");
  }
  if (inode.double_indirect == 0) {
    if (!allocate) return NotFound("file block not mapped");
    RGPD_ASSIGN_OR_RETURN(inode.double_indirect, fresh_block());
  }
  RGPD_ASSIGN_OR_RETURN(Bytes outer, txn.ReadBlock(inode.double_indirect));
  BlockIndex inner_index = ReadPointer(outer, double_slot / ppb);
  if (inner_index == 0) {
    if (!allocate) return NotFound("file block not mapped");
    RGPD_ASSIGN_OR_RETURN(inner_index, fresh_block());
    WritePointer(outer, double_slot / ppb, inner_index);
    RGPD_RETURN_IF_ERROR(
        txn.WriteBlock(inode.double_indirect, std::move(outer)));
  }
  return walk(inner_index, double_slot % ppb);
}

Result<std::vector<BlockIndex>> InodeStore::ListDataBlocks(
    const Inode& inode) const {
  std::vector<BlockIndex> out;
  const std::uint64_t ppb = sb_.block_size / 8;
  for (BlockIndex b : inode.direct) {
    if (b != 0) out.push_back(b);
  }
  const auto list_single = [&](BlockIndex indirect) -> Status {
    Bytes image;
    RGPD_RETURN_IF_ERROR(ReadBlockCoherent(indirect, image));
    for (std::uint64_t i = 0; i < ppb; ++i) {
      const BlockIndex b = ReadPointer(image, i);
      if (b != 0) out.push_back(b);
    }
    out.push_back(indirect);  // the indirect block itself, last
    return Status::Ok();
  };
  if (inode.indirect != 0) {
    RGPD_RETURN_IF_ERROR(list_single(inode.indirect));
  }
  if (inode.double_indirect != 0) {
    Bytes outer;
    RGPD_RETURN_IF_ERROR(ReadBlockCoherent(inode.double_indirect, outer));
    for (std::uint64_t i = 0; i < ppb; ++i) {
      const BlockIndex inner = ReadPointer(outer, i);
      if (inner != 0) {
        RGPD_RETURN_IF_ERROR(list_single(inner));
      }
    }
    out.push_back(inode.double_indirect);
  }
  return out;
}

// ---- content IO --------------------------------------------------------------

Result<Bytes> InodeStore::ReadRange(Inode inode, std::uint64_t offset,
                                    std::uint64_t length) const {
  if (inode.kind == InodeKind::kFree) {
    return NotFound("inode is free");
  }
  if (offset > inode.size) return OutOfRange("read past end of file");
  length = std::min(length, inode.size - offset);
  Bytes out;
  out.reserve(length);
  Bytes block;
  // Const read path: a throwaway txn gives MapFileBlock a uniform
  // interface; with allocate=false it never stages writes.
  Txn txn(*const_cast<InodeStore*>(this));
  while (length > 0) {
    const std::uint64_t file_block = offset / sb_.block_size;
    const std::uint32_t in_block = offset % sb_.block_size;
    const std::uint64_t take =
        std::min<std::uint64_t>(length, sb_.block_size - in_block);
    auto mapped = const_cast<InodeStore*>(this)->MapFileBlock(
        inode, file_block, /*allocate=*/false, txn);
    if (mapped.ok()) {
      RGPD_METRIC_COUNT("inodefs.block.reads");
      RGPD_RETURN_IF_ERROR(ReadBlockCoherent(*mapped, block));
      out.insert(out.end(), block.begin() + in_block,
                 block.begin() + in_block + take);
    } else {
      out.insert(out.end(), take, 0);  // hole reads as zeros
    }
    offset += take;
    length -= take;
  }
  return out;
}

Result<Bytes> InodeStore::ReadAt(InodeId id, std::uint64_t offset,
                                 std::uint64_t length) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  RGPD_ASSIGN_OR_RETURN(Inode inode, LoadInode(id, nullptr));
  return ReadRange(std::move(inode), offset, length);
}

Result<Bytes> InodeStore::ReadAll(InodeId id) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  RGPD_ASSIGN_OR_RETURN(Inode inode, LoadInode(id, nullptr));
  const std::uint64_t size = inode.size;
  return ReadRange(std::move(inode), 0, size);
}

std::vector<Result<Bytes>> InodeStore::ReadAllBatch(
    const std::vector<InodeId>& ids) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::vector<Result<Bytes>> out;
  out.reserve(ids.size());
  if (group_depth_ > 0) {
    // Inside our own group scope staged blocks shadow the device; the
    // batched fast path below reads the device directly, so fall back to
    // the coherent per-id path.
    for (InodeId id : ids) out.push_back(ReadAll(id));
    return out;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out.push_back(Internal("ReadAllBatch slot not filled"));
  }
  const auto fail_all = [&](const Status& status) {
    for (auto& slot : out) slot = status;
  };

  // Shared image cache across the rounds; batch_read fetches only blocks
  // not yet present, in one device submission.
  std::map<BlockIndex, Bytes> blocks;
  const auto batch_read = [&](const std::vector<BlockIndex>& want) -> Status {
    std::vector<BlockIndex> need;
    for (BlockIndex b : want) {
      if (blocks.emplace(b, Bytes()).second) need.push_back(b);
    }
    if (need.empty()) return Status::Ok();
    std::vector<Bytes> data;
    RGPD_RETURN_IF_ERROR(DevReadBatch(need, data));
    RGPD_METRIC_COUNT_N("inodefs.block.reads", need.size());
    for (std::size_t i = 0; i < need.size(); ++i) {
      blocks[need[i]] = std::move(data[i]);
    }
    return Status::Ok();
  };

  // Round 1: the (deduped) inode-table blocks of every valid id.
  std::vector<BlockIndex> round1;
  round1.reserve(ids.size());
  for (InodeId id : ids) {
    if (CheckId(id).ok()) round1.push_back(InodeBlock(id));
  }
  if (Status s = batch_read(round1); !s.ok()) {
    fail_all(s);
    return out;
  }

  struct Job {
    std::size_t slot = 0;
    Inode inode;
    std::uint64_t file_blocks = 0;
  };
  std::vector<Job> jobs;
  jobs.reserve(ids.size());
  const std::uint64_t ppb = sb_.block_size / 8;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (Status s = CheckId(ids[i]); !s.ok()) {
      out[i] = s;
      continue;
    }
    const Bytes& table = blocks[InodeBlock(ids[i])];
    auto inode = Inode::Decode(
        ByteSpan(table.data() + InodeOffset(ids[i]), kInodeDiskSize));
    if (!inode.ok()) {
      out[i] = inode.status();
      continue;
    }
    if (inode->kind == InodeKind::kFree) {
      out[i] = NotFound("inode is free");
      continue;
    }
    if (inode->size == 0) {
      out[i] = Bytes();
      continue;
    }
    Job job;
    job.slot = i;
    job.inode = *inode;
    job.file_blocks = (inode->size + sb_.block_size - 1) / sb_.block_size;
    jobs.push_back(std::move(job));
  }

  // Round 2: single-indirect and outer double-indirect blocks.
  std::vector<BlockIndex> round2;
  for (const Job& job : jobs) {
    if (job.inode.indirect != 0 && job.file_blocks > kDirectBlocks) {
      round2.push_back(job.inode.indirect);
    }
    if (job.inode.double_indirect != 0 &&
        job.file_blocks > kDirectBlocks + ppb) {
      round2.push_back(job.inode.double_indirect);
    }
  }
  if (Status s = batch_read(round2); !s.ok()) {
    fail_all(s);
    return out;
  }

  // Round 2b: inner double-indirect blocks actually referenced.
  std::vector<BlockIndex> round2b;
  for (const Job& job : jobs) {
    if (job.inode.double_indirect == 0 ||
        job.file_blocks <= kDirectBlocks + ppb) {
      continue;
    }
    const Bytes& outer = blocks[job.inode.double_indirect];
    const std::uint64_t double_blocks = job.file_blocks - kDirectBlocks - ppb;
    const std::uint64_t outer_slots = (double_blocks + ppb - 1) / ppb;
    for (std::uint64_t slot = 0; slot < std::min(outer_slots, ppb); ++slot) {
      const BlockIndex inner = ReadPointer(outer, slot);
      if (inner != 0) round2b.push_back(inner);
    }
  }
  if (Status s = batch_read(round2b); !s.ok()) {
    fail_all(s);
    return out;
  }

  // Resolve every file block to a device block (0 = hole) from the
  // cached indirect images, then fetch all data blocks in one round.
  const auto resolve = [&](const Job& job,
                           std::uint64_t file_block) -> BlockIndex {
    const Inode& inode = job.inode;
    if (file_block < kDirectBlocks) return inode.direct[file_block];
    const std::uint64_t single_slot = file_block - kDirectBlocks;
    if (single_slot < ppb) {
      if (inode.indirect == 0) return 0;
      return ReadPointer(blocks[inode.indirect], single_slot);
    }
    const std::uint64_t double_slot = single_slot - ppb;
    if (inode.double_indirect == 0 || double_slot >= ppb * ppb) return 0;
    const BlockIndex inner =
        ReadPointer(blocks[inode.double_indirect], double_slot / ppb);
    if (inner == 0) return 0;
    return ReadPointer(blocks[inner], double_slot % ppb);
  };

  std::vector<BlockIndex> round3;
  for (const Job& job : jobs) {
    for (std::uint64_t fb = 0; fb < job.file_blocks; ++fb) {
      const BlockIndex b = resolve(job, fb);
      if (b != 0) round3.push_back(b);
    }
  }
  if (Status s = batch_read(round3); !s.ok()) {
    fail_all(s);
    return out;
  }

  for (const Job& job : jobs) {
    Bytes content;
    content.reserve(job.inode.size);
    for (std::uint64_t fb = 0; fb < job.file_blocks; ++fb) {
      const BlockIndex b = resolve(job, fb);
      if (b == 0) {
        content.insert(content.end(), sb_.block_size, 0);  // hole
      } else {
        const Bytes& image = blocks[b];
        content.insert(content.end(), image.begin(), image.end());
      }
    }
    content.resize(job.inode.size);
    out[job.slot] = std::move(content);
  }
  return out;
}

Status InodeStore::WriteAt(InodeId id, std::uint64_t offset, ByteSpan data) {
  if (data.empty()) return Status::Ok();
  if (offset + data.size() > MaxFileSize()) {
    return OutOfRange("write exceeds maximum file size");
  }
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  Txn txn(*this);
  RGPD_ASSIGN_OR_RETURN(Inode inode, LoadInode(id, &txn));
  if (inode.kind == InodeKind::kFree) return NotFound("inode is free");

  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t file_block = pos / sb_.block_size;
    const std::uint32_t in_block = pos % sb_.block_size;
    const std::uint64_t take = std::min<std::uint64_t>(
        data.size() - consumed, sb_.block_size - in_block);
    RGPD_ASSIGN_OR_RETURN(BlockIndex device_block,
                          MapFileBlock(inode, file_block, true, txn));
    RGPD_ASSIGN_OR_RETURN(Bytes image, txn.ReadBlock(device_block));
    std::memcpy(image.data() + in_block, data.data() + consumed, take);
    RGPD_RETURN_IF_ERROR(txn.WriteBlock(device_block, std::move(image)));
    pos += take;
    consumed += take;
  }
  inode.size = std::max(inode.size, offset + data.size());
  inode.mtime = clock_->Now();
  RGPD_RETURN_IF_ERROR(StoreInode(id, inode, txn));
  return txn.Commit();
}

Status InodeStore::Append(InodeId id, ByteSpan data) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  RGPD_ASSIGN_OR_RETURN(Inode inode, LoadInode(id, nullptr));
  return WriteAt(id, inode.size, data);
}

Status InodeStore::WriteAll(InodeId id, ByteSpan data) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  RGPD_ASSIGN_OR_RETURN(Inode inode, LoadInode(id, nullptr));
  if (inode.size > data.size()) {
    RGPD_RETURN_IF_ERROR(Truncate(id, data.size(), /*scrub=*/false));
  }
  if (data.empty()) return Truncate(id, 0, /*scrub=*/false);
  return WriteAt(id, 0, data);
}

Status InodeStore::Truncate(InodeId id, std::uint64_t new_size, bool scrub) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  Txn txn(*this);
  RGPD_ASSIGN_OR_RETURN(Inode inode, LoadInode(id, &txn));
  if (inode.kind == InodeKind::kFree) return NotFound("inode is free");
  if (new_size >= inode.size) {
    inode.size = new_size;
    RGPD_RETURN_IF_ERROR(StoreInode(id, inode, txn));
    return txn.Commit();
  }

  const std::uint64_t keep_blocks =
      (new_size + sb_.block_size - 1) / sb_.block_size;
  const std::uint64_t ppb = sb_.block_size / 8;

  // Free direct blocks past the keep point.
  for (std::uint64_t i = keep_blocks; i < kDirectBlocks; ++i) {
    if (inode.direct[i] != 0) {
      RGPD_RETURN_IF_ERROR(FreeDataBlock(inode.direct[i], scrub, txn));
      inode.direct[i] = 0;
    }
  }

  // Free pointees past the keep point inside one indirect block whose
  // first pointee covers file block `base`. Returns true if any pointee
  // was kept (so the indirect block itself must stay).
  const auto prune_single = [&](BlockIndex indirect,
                                std::uint64_t base) -> Result<bool> {
    RGPD_ASSIGN_OR_RETURN(Bytes image, txn.ReadBlock(indirect));
    bool any_kept = false;
    bool dirty = false;
    for (std::uint64_t slot = 0; slot < ppb; ++slot) {
      const BlockIndex target = ReadPointer(image, slot);
      if (target == 0) continue;
      if (base + slot >= keep_blocks) {
        RGPD_RETURN_IF_ERROR(FreeDataBlock(target, scrub, txn));
        WritePointer(image, slot, 0);
        dirty = true;
      } else {
        any_kept = true;
      }
    }
    if (any_kept && dirty) {
      RGPD_RETURN_IF_ERROR(txn.WriteBlock(indirect, std::move(image)));
    }
    return any_kept;
  };

  if (inode.indirect != 0) {
    RGPD_ASSIGN_OR_RETURN(bool kept,
                          prune_single(inode.indirect, kDirectBlocks));
    if (!kept) {
      RGPD_RETURN_IF_ERROR(FreeDataBlock(inode.indirect, scrub, txn));
      inode.indirect = 0;
    }
  }
  if (inode.double_indirect != 0) {
    RGPD_ASSIGN_OR_RETURN(Bytes outer, txn.ReadBlock(inode.double_indirect));
    bool outer_kept = false;
    bool outer_dirty = false;
    for (std::uint64_t outer_slot = 0; outer_slot < ppb; ++outer_slot) {
      const BlockIndex inner = ReadPointer(outer, outer_slot);
      if (inner == 0) continue;
      const std::uint64_t base = kDirectBlocks + ppb + outer_slot * ppb;
      RGPD_ASSIGN_OR_RETURN(bool kept, prune_single(inner, base));
      if (kept) {
        outer_kept = true;
      } else {
        RGPD_RETURN_IF_ERROR(FreeDataBlock(inner, scrub, txn));
        WritePointer(outer, outer_slot, 0);
        outer_dirty = true;
      }
    }
    if (outer_kept) {
      if (outer_dirty) {
        RGPD_RETURN_IF_ERROR(
            txn.WriteBlock(inode.double_indirect, std::move(outer)));
      }
    } else {
      RGPD_RETURN_IF_ERROR(
          FreeDataBlock(inode.double_indirect, scrub, txn));
      inode.double_indirect = 0;
    }
  }
  // Always zero the partial tail of the last kept block: a later size
  // extension must read zeros there, not resurrected stale bytes (ext4
  // zeroes the tail on truncate for exactly this reason). Whole freed
  // blocks are only zeroed on the scrub path.
  if (new_size % sb_.block_size != 0) {
    const std::uint64_t last_block = new_size / sb_.block_size;
    auto mapped = MapFileBlock(inode, last_block, false, txn);
    if (mapped.ok()) {
      RGPD_ASSIGN_OR_RETURN(Bytes image, txn.ReadBlock(*mapped));
      std::fill(image.begin() +
                    static_cast<std::ptrdiff_t>(new_size % sb_.block_size),
                image.end(), 0);
      RGPD_RETURN_IF_ERROR(txn.WriteBlock(*mapped, std::move(image)));
    }
  }

  inode.size = new_size;
  inode.mtime = clock_->Now();
  RGPD_RETURN_IF_ERROR(StoreInode(id, inode, txn));
  return txn.Commit();
}

Status InodeStore::ScrubJournal() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return journal_.Scrub();
}

std::uint64_t InodeStore::FreeBlockCount() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::uint64_t used = 0;
  for (std::uint64_t word : bitmap_) {
    used += static_cast<std::uint64_t>(__builtin_popcountll(word));
  }
  return sb_.block_count - used;
}

std::uint64_t InodeStore::FreeInodeCount() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::uint64_t free_count = 0;
  for (InodeId id = 1; id < sb_.inode_count; ++id) {
    auto inode = LoadInode(id, nullptr);
    if (inode.ok() && inode->kind == InodeKind::kFree) ++free_count;
  }
  return free_count;
}

}  // namespace rgpdos::inodefs
