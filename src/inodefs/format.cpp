#include "inodefs/format.hpp"

#include <cstring>

#include "common/crc32.hpp"

namespace rgpdos::inodefs {

Bytes Inode::Encode() const {
  ByteWriter w(kInodeDiskSize);
  w.PutU8(static_cast<std::uint8_t>(kind));
  w.PutU8(flags);
  w.PutU16(0);  // reserved
  w.PutU32(nlink);
  w.PutU64(size);
  w.PutI64(ctime);
  w.PutI64(mtime);
  w.PutU64(generation);
  for (BlockIndex b : direct) w.PutU64(b);
  w.PutU64(indirect);
  w.PutU64(double_indirect);
  Bytes out = w.Take();
  out.resize(kInodeDiskSize, 0);
  return out;
}

Result<Inode> Inode::Decode(ByteSpan bytes) {
  if (bytes.size() < kInodeDiskSize) {
    return Corruption("inode image too small");
  }
  ByteReader r(bytes);
  Inode inode;
  RGPD_ASSIGN_OR_RETURN(std::uint8_t kind, r.GetU8());
  if (kind > static_cast<std::uint8_t>(InodeKind::kFormatHint)) {
    return Corruption("inode has unknown kind");
  }
  inode.kind = static_cast<InodeKind>(kind);
  RGPD_ASSIGN_OR_RETURN(inode.flags, r.GetU8());
  RGPD_RETURN_IF_ERROR(r.Skip(2));
  RGPD_ASSIGN_OR_RETURN(inode.nlink, r.GetU32());
  RGPD_ASSIGN_OR_RETURN(inode.size, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(inode.ctime, r.GetI64());
  RGPD_ASSIGN_OR_RETURN(inode.mtime, r.GetI64());
  RGPD_ASSIGN_OR_RETURN(inode.generation, r.GetU64());
  for (BlockIndex& b : inode.direct) {
    RGPD_ASSIGN_OR_RETURN(b, r.GetU64());
  }
  RGPD_ASSIGN_OR_RETURN(inode.indirect, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(inode.double_indirect, r.GetU64());
  return inode;
}

namespace {

/// One serialised superblock image: all fields followed by a CRC over
/// them. Must fit in kSuperblockSlotSize.
Bytes EncodeImage(const Superblock& sb) {
  ByteWriter w(kSuperblockSlotSize);
  w.PutU32(sb.magic);
  w.PutU32(sb.block_size);
  w.PutU64(sb.block_count);
  w.PutU32(sb.inode_count);
  w.PutU64(sb.bitmap_start);
  w.PutU64(sb.bitmap_blocks);
  w.PutU64(sb.inode_table_start);
  w.PutU64(sb.inode_table_blocks);
  w.PutU64(sb.journal_start);
  w.PutU64(sb.journal_blocks);
  w.PutU64(sb.data_start);
  w.PutU32(sb.root_dir);
  w.PutU64(sb.journal_head);
  w.PutU64(sb.journal_seq);
  w.PutU64(sb.journal_checkpointed_seq);
  w.PutU64(sb.sb_version);
  const std::uint32_t crc = Crc32(w.buffer());
  w.PutU32(crc);
  return w.Take();
}

Result<Superblock> DecodeSlot(ByteSpan slot) {
  ByteReader r(slot);
  Superblock sb;
  RGPD_ASSIGN_OR_RETURN(sb.magic, r.GetU32());
  if (sb.magic != kSuperblockMagic) {
    return Corruption("bad superblock magic (device not formatted?)");
  }
  RGPD_ASSIGN_OR_RETURN(sb.block_size, r.GetU32());
  RGPD_ASSIGN_OR_RETURN(sb.block_count, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.inode_count, r.GetU32());
  RGPD_ASSIGN_OR_RETURN(sb.bitmap_start, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.bitmap_blocks, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.inode_table_start, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.inode_table_blocks, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.journal_start, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.journal_blocks, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.data_start, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.root_dir, r.GetU32());
  RGPD_ASSIGN_OR_RETURN(sb.journal_head, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.journal_seq, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.journal_checkpointed_seq, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(sb.sb_version, r.GetU64());
  const std::size_t image_size = EncodeImage(sb).size();
  if (slot.size() < image_size) {
    return Corruption("superblock slot truncated");
  }
  ByteReader crc_reader(
      ByteSpan(slot.data() + image_size - 4, 4));
  RGPD_ASSIGN_OR_RETURN(const std::uint32_t stored_crc, crc_reader.GetU32());
  const std::uint32_t computed_crc =
      Crc32(ByteSpan(slot.data(), image_size - 4));
  if (stored_crc != computed_crc) {
    return Corruption("superblock slot CRC mismatch (torn write?)");
  }
  return sb;
}

}  // namespace

void Superblock::EncodeInto(Bytes& block) {
  ++sb_version;
  const Bytes image = EncodeImage(*this);
  const std::size_t offset = (sb_version % 2) * kSuperblockSlotSize;
  if (block.size() < offset + kSuperblockSlotSize) {
    block.resize(offset + kSuperblockSlotSize, 0);
  }
  std::memset(block.data() + offset, 0, kSuperblockSlotSize);
  std::memcpy(block.data() + offset, image.data(), image.size());
}

Result<Superblock> Superblock::Decode(ByteSpan bytes) {
  Result<Superblock> best = Corruption(
      "bad superblock magic (device not formatted?)");
  for (std::size_t slot = 0; slot < 2; ++slot) {
    const std::size_t offset = slot * kSuperblockSlotSize;
    if (offset + kSuperblockSlotSize > bytes.size()) break;
    auto decoded =
        DecodeSlot(ByteSpan(bytes.data() + offset, kSuperblockSlotSize));
    if (!decoded.ok()) continue;
    if (!best.ok() || decoded->sb_version > best->sb_version) {
      best = std::move(decoded);
    }
  }
  return best;
}

Result<Superblock> Superblock::Plan(std::uint32_t block_size,
                                    std::uint64_t block_count,
                                    std::uint32_t inode_count,
                                    std::uint64_t journal_blocks) {
  if (block_size < 512 || (block_size & (block_size - 1)) != 0) {
    return InvalidArgument("block_size must be a power of two >= 512");
  }
  if (inode_count == 0) return InvalidArgument("inode_count must be > 0");

  Superblock sb;
  sb.block_size = block_size;
  sb.block_count = block_count;
  sb.inode_count = inode_count;

  const std::uint64_t bits_per_block = std::uint64_t(block_size) * 8;
  sb.bitmap_start = 1;
  sb.bitmap_blocks = (block_count + bits_per_block - 1) / bits_per_block;

  const std::uint64_t inodes_per_block = block_size / kInodeDiskSize;
  sb.inode_table_start = sb.bitmap_start + sb.bitmap_blocks;
  sb.inode_table_blocks =
      (std::uint64_t(inode_count) + inodes_per_block - 1) / inodes_per_block;

  sb.journal_start = sb.inode_table_start + sb.inode_table_blocks;
  sb.journal_blocks = journal_blocks;

  sb.data_start = sb.journal_start + sb.journal_blocks;
  if (sb.data_start + 8 > block_count) {
    return InvalidArgument(
        "device too small for requested inode table and journal");
  }
  return sb;
}

}  // namespace rgpdos::inodefs
