// Write-ahead data journal.
//
// Every mutation of the filesystem is logged here (full block images,
// data and metadata alike — "data journaling" in ext4 terms) before being
// written in place, giving crash atomicity. The journal is a circular
// region of blocks; old records are NOT erased when a transaction
// checkpoints, only overwritten when the head wraps around.
//
// That retention is deliberate: it reproduces the violation the paper
// builds its case on (§1): "data deleted by the DB engine can still be
// present in the filesystem's logs". The Fig-2 bench counts plaintext PD
// bytes recoverable from this region after a DB-level delete. rgpdOS's
// DBFS erasure path calls Scrub() to destroy the history; the baseline
// never does.
#pragma once

#include <utility>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "inodefs/format.hpp"

namespace rgpdos::inodefs {

/// One journaled block write, as recovered by Replay().
struct ReplayedWrite {
  std::uint64_t seq = 0;
  BlockIndex block = 0;
  Bytes data;
};

class Journal {
 public:
  /// `superblock` is borrowed and mutated (journal_head / journal_seq).
  ///
  /// Thread-safety: the journal has no lock of its own — every call is
  /// made by InodeStore under the per-store mutex (rank kInodefs), which
  /// also serialises the head/seq cursor in the shared superblock.
  /// bytes_logged() is a bench counter: read it only at quiescence.
  Journal(blockdev::BlockDevice& device, Superblock& superblock)
      : device_(device), sb_(superblock) {}

  /// Log a whole transaction (data records + commit record) and flush.
  /// Fails with ResourceExhausted if the transaction cannot fit in the
  /// journal region even when empty.
  Status AppendTransaction(
      const std::vector<std::pair<BlockIndex, Bytes>>& writes);

  /// Scan the region for committed transactions; returns their block
  /// writes ordered by (seq, log position). Also repositions the head
  /// after the highest committed record so appends resume safely.
  Result<std::vector<ReplayedWrite>> Replay();

  /// Zero the entire journal region (GDPR scrub). Head resets to 0;
  /// sequence numbers keep increasing so replay ordering stays sound.
  Status Scrub();

  /// Lifetime bytes appended (bench counter).
  [[nodiscard]] std::uint64_t bytes_logged() const { return bytes_logged_; }

 private:
  /// Blocks one record with `payload_size` occupies (header + payload,
  /// rounded up to whole blocks).
  [[nodiscard]] std::uint64_t RecordBlocks(std::size_t payload_size) const;
  Status WriteRecord(std::uint64_t seq, std::uint8_t kind, BlockIndex target,
                     ByteSpan payload);

  blockdev::BlockDevice& device_;
  Superblock& sb_;
  std::uint64_t bytes_logged_ = 0;
};

}  // namespace rgpdos::inodefs
