// Write-ahead data journal.
//
// Every mutation of the filesystem is logged here (full block images,
// data and metadata alike — "data journaling" in ext4 terms) before being
// written in place, giving crash atomicity. The journal is a circular
// region of blocks; old records are NOT erased when a transaction
// checkpoints, only overwritten when the head wraps around.
//
// That retention is deliberate: it reproduces the violation the paper
// builds its case on (§1): "data deleted by the DB engine can still be
// present in the filesystem's logs". The Fig-2 bench counts plaintext PD
// bytes recoverable from this region after a DB-level delete. rgpdOS's
// DBFS erasure path calls Scrub() to destroy the history; the baseline
// never does.
//
// Record format (little-endian, CRC over header+payload):
//   magic u32 | seq u64 | kind u8 | target u64 | payload_len u32 |
//   payload | crc u32
// Legacy (pre-upgrade) transactions are whole-block "physical" records:
// data records carry the full block image as payload; the commit
// record's payload is the transaction's data-record count, so Replay can
// tell a complete transaction from one whose earlier records were
// overwritten by a mid-transaction wrap (such a commit is discarded as
// torn).
//
// Extent transactions (kind 3, the default since journal_extents) are
// physiological: ONE self-committing record logs only the modified byte
// ranges of every block the transaction touched (target = block count; a
// valid CRC IS the commit — a torn record fails the CRC and the whole
// transaction is discarded). Per-block payload layout:
//   block u64 | base u8 (0 = read-modify-write the device block,
//                        1 = reconstruct from a zero block)
//   | extent_count u16 | { offset u32 | len u32 } * extent_count
//   | extent data bytes (concatenated, in extent order)
// Replay reconstructs full images in sequence order, chaining same-block
// transactions through an image map, and replays BOTH formats from one
// region — a journal written partly before and partly after the upgrade
// recovers completely.
#pragma once

#include <utility>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "inodefs/format.hpp"
#include "inodefs/io_retry.hpp"

namespace rgpdos::inodefs {

/// One journaled block write, as recovered by Replay().
struct ReplayedWrite {
  std::uint64_t seq = 0;
  BlockIndex block = 0;
  Bytes data;
};

/// One block write handed to AppendTransaction. `data` is always the
/// full final image (the checkpoint source). The base tells the extent
/// encoder what the block looked like before the transaction:
///   kBaseDevice — `preimage` holds the on-device image; only the byte
///                 ranges that differ are journaled.
///   kBaseZero   — the block was freshly allocated and zero-filled;
///                 only the non-zero content is journaled.
///   kBaseNone   — no preimage known; the full image is journaled as a
///                 single extent.
/// In legacy mode (extent_mode off) the base is ignored and the full
/// image is logged as a whole-block data record.
struct JournalWrite {
  static constexpr std::uint8_t kBaseDevice = 0;
  static constexpr std::uint8_t kBaseZero = 1;
  static constexpr std::uint8_t kBaseNone = 2;

  BlockIndex block = 0;
  Bytes data;
  std::uint8_t base = kBaseNone;
  Bytes preimage;  ///< valid iff base == kBaseDevice
};

/// What the last Replay() saw while scanning the region — the
/// inodefs.recovery.* metrics and the crash harness read this.
struct ReplayStats {
  std::uint64_t committed_txns = 0;    ///< applied
  std::uint64_t torn_txns = 0;         ///< data records without a commit
  std::uint64_t incomplete_txns = 0;   ///< committed but records missing
                                       ///< (mid-transaction wrap clobber)
  std::uint64_t stale_txns = 0;        ///< committed but already durably
                                       ///< checkpointed (seq below the
                                       ///< superblock watermark) — skipped
  std::uint64_t corrupt_records = 0;   ///< bad CRC / truncated record
  std::uint64_t replayed_writes = 0;
};

class Journal {
 public:
  /// `superblock` is borrowed and mutated (journal_head / journal_seq).
  ///
  /// Thread-safety: the journal has no lock of its own — every call is
  /// made by InodeStore under the per-store mutex (rank kInodefs), which
  /// also serialises the head/seq cursor in the shared superblock.
  /// bytes_logged() is a bench counter: read it only at quiescence.
  Journal(blockdev::BlockDevice& device, Superblock& superblock)
      : device_(device), sb_(superblock) {}

  /// Transient-IO retry policy for every device access the journal makes.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Extent (physiological) logging on/off. Off = the pre-upgrade
  /// whole-block format; Replay always understands both.
  void set_extent_mode(bool on) { extent_mode_ = on; }
  [[nodiscard]] bool extent_mode() const { return extent_mode_; }

  /// Log a whole transaction and flush — one self-committing extent
  /// record in extent mode, data records + commit record in legacy mode.
  /// All record blocks go to the device as ONE batched submission (plus
  /// one per wrap segment), not N serialized writes. Fails with
  /// ResourceExhausted if the transaction cannot fit in the journal
  /// region even when empty — committing it anyway would wrap over the
  /// transaction's own records and guarantee a torn replay.
  Status AppendTransaction(const std::vector<JournalWrite>& writes);

  /// Scan the region for committed transactions; returns their block
  /// writes ordered by (seq, log position). Also repositions the head
  /// after the HIGHEST-SEQ committed transaction (not the highest block
  /// offset: after a wrap the newest commit sits at a LOWER offset than
  /// older, already-checkpointed transactions) so appends resume without
  /// overwriting the freshest records.
  Result<std::vector<ReplayedWrite>> Replay();

  /// What the last Replay() found. Valid after Replay() returns OK.
  [[nodiscard]] const ReplayStats& last_replay() const {
    return replay_stats_;
  }

  /// Zero the entire journal region (GDPR scrub). Head resets to 0;
  /// sequence numbers keep increasing so replay ordering stays sound.
  Status Scrub();

  /// Lifetime bytes appended (bench counter).
  [[nodiscard]] std::uint64_t bytes_logged() const { return bytes_logged_; }

 private:
  /// Blocks one record with `payload_size` occupies (header + payload,
  /// rounded up to whole blocks).
  [[nodiscard]] std::uint64_t RecordBlocks(std::size_t payload_size) const;
  /// Build the padded on-medium image of one record.
  [[nodiscard]] Bytes BuildRecord(std::uint64_t seq, std::uint8_t kind,
                                  std::uint64_t target, ByteSpan payload) const;
  /// Write pre-built record images contiguously from the head, batching
  /// all block writes of each wrap segment into one device submission.
  Status WriteRecordImages(const std::vector<Bytes>& images);
  /// Durably persist the superblock (checkpoint watermark included).
  /// Called before the head wraps and before a scrub: both destroy old
  /// records, which is only safe once the medium provably knows they are
  /// checkpointed — otherwise a later Replay would re-apply surviving
  /// STALE records and revert blocks whose newest images were destroyed.
  Status PersistSuperblock();

  blockdev::BlockDevice& device_;
  Superblock& sb_;
  RetryPolicy retry_;
  bool extent_mode_ = false;
  std::uint64_t bytes_logged_ = 0;
  ReplayStats replay_stats_;
};

}  // namespace rgpdos::inodefs
