// Bounded retry-with-backoff for transient device IO errors.
//
// Real media fail transiently (bus resets, controller hiccups); the
// simulated fault-injecting device reproduces that class as one-shot
// kIoError results. inodefs wraps every device operation in RetryIo so a
// transient blip never aborts a journal commit or a checkpoint. Only
// kIoError is retried: kCrashed (power gone) and every other code are
// permanent and propagate immediately. Retries and their outcomes are
// counted under inodefs.io.* metrics.
#pragma once

#include <chrono>
#include <thread>
#include <utility>

#include "common/status.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::inodefs {

struct RetryPolicy {
  /// Total attempts (first try included). 1 disables retrying.
  int max_attempts = 4;
  /// Sleep before the first retry; doubles per subsequent retry. 0 spins.
  std::uint64_t backoff_ns = 20'000;

  static RetryPolicy None() { return {1, 0}; }
};

template <typename Fn>
Status RetryIo(const RetryPolicy& policy, Fn&& fn) {
  Status status = std::forward<Fn>(fn)();
  std::uint64_t backoff = policy.backoff_ns;
  for (int attempt = 1;
       attempt < policy.max_attempts && status.code() == StatusCode::kIoError;
       ++attempt) {
    RGPD_METRIC_COUNT("inodefs.io.retries");
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      backoff *= 2;
    }
    status = fn();
    if (status.ok()) {
      RGPD_METRIC_COUNT("inodefs.io.retry_recoveries");
    }
  }
  if (status.code() == StatusCode::kIoError) {
    RGPD_METRIC_COUNT("inodefs.io.retry_exhausted");
  }
  return status;
}

}  // namespace rgpdos::inodefs
