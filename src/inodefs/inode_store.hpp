// InodeStore: allocation, inode table, and file-content IO with
// journaled transactions. This is the substrate shared by the NPD
// filesystem (path layer in filesystem.hpp) and rgpdOS's DBFS, which
// builds its two inode trees (paper §3) directly on these primitives.
//
// Thread-safety: every public method serialises on one per-store mutex
// (rank kInodefs / kInodefsSensitive in the stack-wide lock order, see
// metrics/lock.hpp). The mutex is recursive so a GroupCommitScope can
// hold it across several public calls. Format/Mount/SetRootDir and the
// introspection accessors are boot/quiescent-time interfaces.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/clock.hpp"
#include "inodefs/format.hpp"
#include "inodefs/journal.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::inodefs {

class InodeStore {
 public:
  struct Options {
    std::uint32_t inode_count = 4096;
    std::uint64_t journal_blocks = 256;
    /// Data journaling (ext4 data=journal analogue). When false only
    /// the in-place write happens — used by ablation benches.
    bool journal_enabled = true;
    /// Position of this store's mutex in the stack-wide lock order. The
    /// split sensitive-PD store gets kInodefsSensitive so DBFS can nest
    /// its writes inside a primary-store group-commit scope.
    metrics::LockRank lock_rank = metrics::LockRank::kInodefs;
    /// Bounded retry for transient device IO errors (kIoError only;
    /// kCrashed is permanent). Applies to every device access the store
    /// or its journal makes. RetryPolicy::None() disables.
    RetryPolicy io_retry;
  };

  /// What Mount()'s journal replay recovered (inodefs.recovery.* metrics
  /// mirror this; the crash harness and bench_recovery read it directly).
  struct RecoveryReport {
    ReplayStats replay;
    std::uint64_t checkpointed_blocks = 0;  ///< replayed writes applied
  };

  /// Format a fresh device and mount it.
  static Result<std::unique_ptr<InodeStore>> Format(
      blockdev::BlockDevice* device, const Options& options,
      const Clock* clock);

  /// Mount an existing device: reads the superblock, replays the journal
  /// (committed transactions are re-applied in place and flushed), and
  /// fills last_recovery(). Torn or incomplete journal transactions are
  /// discarded, never partially applied.
  static Result<std::unique_ptr<InodeStore>> Mount(
      blockdev::BlockDevice* device, const Clock* clock,
      metrics::LockRank lock_rank = metrics::LockRank::kInodefs,
      const RetryPolicy& io_retry = RetryPolicy{});

  /// RAII journal group commit. While a scope is alive the calling
  /// thread owns the store (the scope holds the store mutex — recursion
  /// lets public methods re-enter) and every transaction committed
  /// inside it stages both its journal record and its in-place writes
  /// into a group buffer instead of touching the device; the scope's
  /// destructor (or Finish(), when the caller wants the status) writes
  /// ONE combined journal transaction and only then checkpoints the
  /// staged blocks in place — write-ahead ordering, so a crash anywhere
  /// inside the scope leaves either the whole group (replayable from the
  /// journal) or none of it. Reads inside the scope see staged writes
  /// via ReadBlockCoherent. This trades crash atomicity granularity for
  /// one journal IO per multi-txn operation — DBFS Put commits 7
  /// transactions and is the intended customer.
  class GroupCommitScope {
   public:
    explicit GroupCommitScope(InodeStore& store);
    ~GroupCommitScope();
    GroupCommitScope(const GroupCommitScope&) = delete;
    GroupCommitScope& operator=(const GroupCommitScope&) = delete;

    /// Flush the group journal record and release the store. Idempotent;
    /// the destructor calls it (dropping the status) if the caller
    /// didn't.
    Status Finish();

   private:
    InodeStore& store_;
    bool finished_ = false;
  };

  /// Persist superblock + bitmap. The store stays usable.
  Status Sync();

  // ---- inode lifecycle ----------------------------------------------------
  Result<InodeId> AllocInode(InodeKind kind);
  /// Release the inode and its data blocks. With `scrub`, every data
  /// block is overwritten with zeros first (GDPR erasure path); without,
  /// blocks are only unlinked (the realistic ext4 behaviour the paper
  /// criticises — old bytes stay on the medium and in the journal).
  Status FreeInode(InodeId id, bool scrub);
  Result<Inode> GetInode(InodeId id) const;
  Status PutInode(InodeId id, const Inode& inode);

  // ---- file content IO ----------------------------------------------------
  Result<Bytes> ReadAt(InodeId id, std::uint64_t offset,
                       std::uint64_t length) const;
  Result<Bytes> ReadAll(InodeId id) const;
  Status WriteAt(InodeId id, std::uint64_t offset, ByteSpan data);
  Status Append(InodeId id, ByteSpan data);
  /// Replace content entirely (truncate + write).
  Status WriteAll(InodeId id, ByteSpan data);
  Status Truncate(InodeId id, std::uint64_t new_size, bool scrub);

  // ---- GDPR scrubbing ------------------------------------------------------
  /// Zero the whole journal region (destroys write history).
  Status ScrubJournal();

  // ---- introspection -------------------------------------------------------
  [[nodiscard]] const Superblock& superblock() const { return sb_; }
  /// Record the NPD filesystem's root directory (persisted by Sync()).
  void SetRootDir(InodeId root) { sb_.root_dir = root; }
  [[nodiscard]] blockdev::BlockDevice& device() { return *device_; }
  [[nodiscard]] std::uint64_t FreeBlockCount() const;
  [[nodiscard]] std::uint64_t FreeInodeCount() const;
  [[nodiscard]] const Journal& journal() const { return journal_; }
  /// Journal-recovery outcome of Mount(); zeros for a Format()ed store.
  [[nodiscard]] const RecoveryReport& last_recovery() const {
    return recovery_;
  }

  /// Test hook: when set, transactions are journaled but NOT written in
  /// place — simulating a crash between commit and checkpoint. A
  /// subsequent Mount() must recover the writes from the journal.
  void SetCrashBeforeCheckpoint(bool crash) {
    crash_before_checkpoint_ = crash;
  }

  /// Maximum file size under the direct + single-indirect scheme.
  [[nodiscard]] std::uint64_t MaxFileSize() const;

 private:
  InodeStore(blockdev::BlockDevice* device, Superblock sb, const Clock* clock,
             bool journal_enabled, metrics::LockRank lock_rank,
             const RetryPolicy& io_retry);

  // Device access with bounded transient-error retry (see io_retry.hpp).
  Status DevRead(BlockIndex index, Bytes& out) const;
  Status DevWrite(BlockIndex index, ByteSpan data);
  Status DevFlush();
  /// DevRead that first consults the group-commit staging buffer, so
  /// reads inside a GroupCommitScope observe the scope's own writes
  /// (which stay off the device until the group journal record commits).
  Status ReadBlockCoherent(BlockIndex index, Bytes& out) const;

  /// A buffered transaction: block images staged in memory, then logged
  /// to the journal and checkpointed in place atomically.
  class Txn {
   public:
    explicit Txn(InodeStore& store) : store_(store) {}
    Result<Bytes> ReadBlock(BlockIndex index);
    Status WriteBlock(BlockIndex index, Bytes data);
    Status Commit();

   private:
    InodeStore& store_;
    std::map<BlockIndex, Bytes> writes_;
  };

  // Bitmap helpers (in-memory copy; dirty blocks staged into the txn).
  [[nodiscard]] bool BitmapGet(BlockIndex block) const;
  void BitmapSet(BlockIndex block, bool used);
  Status StageBitmapBlock(BlockIndex data_block, Txn& txn);
  Result<BlockIndex> AllocDataBlock(Txn& txn);
  Status FreeDataBlock(BlockIndex block, bool scrub, Txn& txn);

  // Inode table addressing.
  [[nodiscard]] BlockIndex InodeBlock(InodeId id) const;
  [[nodiscard]] std::uint32_t InodeOffset(InodeId id) const;
  Result<Inode> LoadInode(InodeId id, Txn* txn) const;
  Status StoreInode(InodeId id, const Inode& inode, Txn& txn);

  /// Map a file-relative block number to a device block, optionally
  /// allocating (and wiring the indirect block) on demand.
  Result<BlockIndex> MapFileBlock(Inode& inode, std::uint64_t file_block,
                                  bool allocate, Txn& txn);
  /// Enumerate all data blocks (direct, indirect pointees, and the
  /// indirect block itself last).
  Result<std::vector<BlockIndex>> ListDataBlocks(const Inode& inode) const;

  Status LoadBitmap();
  Status CheckId(InodeId id) const;

  blockdev::BlockDevice* device_;  // borrowed; outlives the store
  Superblock sb_;
  const Clock* clock_;             // borrowed
  Journal journal_;
  RetryPolicy io_retry_;
  RecoveryReport recovery_;
  bool journal_enabled_;
  bool crash_before_checkpoint_ = false;
  std::vector<std::uint64_t> bitmap_;  // 1 bit per device block
  BlockIndex alloc_hint_ = 0;
  InodeId inode_hint_ = 1;  // lowest possibly-free inode slot

  /// Per-store lock; recursive so GroupCommitScope can hold it across
  /// public re-entry (and so WriteAll -> Truncate style internal nesting
  /// needs no *Locked split).
  mutable metrics::OrderedMutex mu_;
  // Group-commit state. Non-zero depth implies the owning thread holds
  // mu_ for the whole scope, so these need no further synchronisation.
  int group_depth_ = 0;
  std::vector<std::pair<BlockIndex, Bytes>> group_writes_;
  std::map<BlockIndex, std::size_t> group_write_index_;  // dedupe by block

  void StageGroupWrite(BlockIndex block, const Bytes& data);
};

}  // namespace rgpdos::inodefs
