// InodeStore: allocation, inode table, and file-content IO with
// journaled transactions. This is the substrate shared by the NPD
// filesystem (path layer in filesystem.hpp) and rgpdOS's DBFS, which
// builds its two inode trees (paper §3) directly on these primitives.
//
// Thread-safety: every public method serialises on one per-store mutex
// (rank kInodefs / kInodefsSensitive in the stack-wide lock order, see
// metrics/lock.hpp). The mutex is recursive so a GroupCommitScope can
// hold it across several public calls. Format/Mount/SetRootDir and the
// introspection accessors are boot/quiescent-time interfaces.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/clock.hpp"
#include "inodefs/format.hpp"
#include "inodefs/journal.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::inodefs {

class InodeStore {
 public:
  struct Options {
    std::uint32_t inode_count = 4096;
    std::uint64_t journal_blocks = 256;
    /// Data journaling (ext4 data=journal analogue). When false only
    /// the in-place write happens — used by ablation benches.
    bool journal_enabled = true;
    /// Position of this store's mutex in the stack-wide lock order. The
    /// split sensitive-PD store gets kInodefsSensitive so DBFS can nest
    /// its writes inside a primary-store group-commit scope.
    metrics::LockRank lock_rank = metrics::LockRank::kInodefs;
    /// Bounded retry for transient device IO errors (kIoError only;
    /// kCrashed is permanent). Applies to every device access the store
    /// or its journal makes. RetryPolicy::None() disables.
    RetryPolicy io_retry;
    /// Physiological (extent) journaling: transactions log only the
    /// dirty byte ranges of each block instead of whole images. Replay
    /// understands both formats, so flipping this on an existing store
    /// is safe mid-journal.
    bool journal_extents = true;
  };

  /// What Mount()'s journal replay recovered (inodefs.recovery.* metrics
  /// mirror this; the crash harness and bench_recovery read it directly).
  struct RecoveryReport {
    ReplayStats replay;
    std::uint64_t checkpointed_blocks = 0;  ///< replayed writes applied
  };

  /// Format a fresh device and mount it.
  static Result<std::unique_ptr<InodeStore>> Format(
      blockdev::BlockDevice* device, const Options& options,
      const Clock* clock);

  /// Mount an existing device: reads the superblock, replays the journal
  /// (committed transactions are re-applied in place and flushed), and
  /// fills last_recovery(). Torn or incomplete journal transactions are
  /// discarded, never partially applied.
  static Result<std::unique_ptr<InodeStore>> Mount(
      blockdev::BlockDevice* device, const Clock* clock,
      metrics::LockRank lock_rank = metrics::LockRank::kInodefs,
      const RetryPolicy& io_retry = RetryPolicy{},
      bool journal_extents = true);

  /// RAII journal group commit. While a scope is alive the calling
  /// thread owns the store (the scope holds the store mutex — recursion
  /// lets public methods re-enter) and every transaction committed
  /// inside it stages both its journal record and its in-place writes
  /// into a group buffer instead of touching the device; the scope's
  /// destructor (or Finish(), when the caller wants the status) writes
  /// ONE combined journal transaction and only then checkpoints the
  /// staged blocks in place — write-ahead ordering, so a crash anywhere
  /// inside the scope leaves either the whole group (replayable from the
  /// journal) or none of it. Reads inside the scope see staged writes
  /// via ReadBlockCoherent. This trades crash atomicity granularity for
  /// one journal IO per multi-txn operation — DBFS Put commits 7
  /// transactions and is the intended customer.
  class GroupCommitScope {
   public:
    explicit GroupCommitScope(InodeStore& store);
    ~GroupCommitScope();
    GroupCommitScope(const GroupCommitScope&) = delete;
    GroupCommitScope& operator=(const GroupCommitScope&) = delete;

    /// Flush the group journal record and release the store. Idempotent;
    /// the destructor calls it (dropping the status) if the caller
    /// didn't.
    Status Finish();

   private:
    InodeStore& store_;
    bool finished_ = false;
  };

  /// Persist superblock + bitmap. The store stays usable.
  Status Sync();

  // ---- inode lifecycle ----------------------------------------------------
  Result<InodeId> AllocInode(InodeKind kind);
  /// Release the inode and its data blocks. With `scrub`, every data
  /// block is overwritten with zeros first (GDPR erasure path); without,
  /// blocks are only unlinked (the realistic ext4 behaviour the paper
  /// criticises — old bytes stay on the medium and in the journal).
  Status FreeInode(InodeId id, bool scrub);
  Result<Inode> GetInode(InodeId id) const;
  Status PutInode(InodeId id, const Inode& inode);

  // ---- file content IO ----------------------------------------------------
  Result<Bytes> ReadAt(InodeId id, std::uint64_t offset,
                       std::uint64_t length) const;
  Result<Bytes> ReadAll(InodeId id) const;
  /// Read the full content of many inodes with batched device
  /// submissions: one batch for the (deduped) inode-table blocks, one
  /// for indirect blocks, one for every file's data blocks — at most
  /// three amortised device round-trips for the whole set instead of
  /// 3 serialized reads per inode. Per-inode failures (free inode, bad
  /// id) come back in that slot; device errors fail the whole call.
  std::vector<Result<Bytes>> ReadAllBatch(const std::vector<InodeId>& ids) const;
  Status WriteAt(InodeId id, std::uint64_t offset, ByteSpan data);
  Status Append(InodeId id, ByteSpan data);
  /// Replace content entirely (truncate + write).
  Status WriteAll(InodeId id, ByteSpan data);
  Status Truncate(InodeId id, std::uint64_t new_size, bool scrub);

  // ---- GDPR scrubbing ------------------------------------------------------
  /// Zero the whole journal region (destroys write history).
  Status ScrubJournal();

  // ---- introspection -------------------------------------------------------
  [[nodiscard]] const Superblock& superblock() const { return sb_; }
  /// Record the NPD filesystem's root directory (persisted by Sync()).
  void SetRootDir(InodeId root) { sb_.root_dir = root; }
  [[nodiscard]] blockdev::BlockDevice& device() { return *device_; }
  [[nodiscard]] std::uint64_t FreeBlockCount() const;
  [[nodiscard]] std::uint64_t FreeInodeCount() const;
  [[nodiscard]] const Journal& journal() const { return journal_; }
  /// Journal-recovery outcome of Mount(); zeros for a Format()ed store.
  [[nodiscard]] const RecoveryReport& last_recovery() const {
    return recovery_;
  }

  /// Test hook: when set, transactions are journaled but NOT written in
  /// place — simulating a crash between commit and checkpoint. A
  /// subsequent Mount() must recover the writes from the journal.
  void SetCrashBeforeCheckpoint(bool crash) {
    crash_before_checkpoint_ = crash;
  }

  /// Maximum file size under the direct + single-indirect scheme.
  [[nodiscard]] std::uint64_t MaxFileSize() const;

 private:
  InodeStore(blockdev::BlockDevice* device, Superblock sb, const Clock* clock,
             bool journal_enabled, metrics::LockRank lock_rank,
             const RetryPolicy& io_retry, bool journal_extents);

  /// Pre-transaction image of a block, captured at first touch so the
  /// extent encoder can journal only the dirty byte ranges.
  struct Preimage {
    std::uint8_t base = 0;  ///< a JournalWrite::kBase* value
    Bytes data;             ///< valid iff base == kBaseDevice
  };

  // Device access with bounded transient-error retry (see io_retry.hpp).
  Status DevRead(BlockIndex index, Bytes& out) const;
  Status DevWrite(BlockIndex index, ByteSpan data);
  Status DevFlush();
  Status DevReadBatch(const std::vector<BlockIndex>& indexes,
                      std::vector<Bytes>& out) const;
  Status DevWriteBatch(const std::vector<blockdev::BatchWrite>& writes);
  /// DevRead that first consults the group-commit staging buffer, so
  /// reads inside a GroupCommitScope observe the scope's own writes
  /// (which stay off the device until the group journal record commits).
  Status ReadBlockCoherent(BlockIndex index, Bytes& out) const;

  /// A buffered transaction: block images staged in memory, then logged
  /// to the journal and checkpointed in place atomically. First-touch
  /// pre-images ride along: a device read captures the on-device image,
  /// a first write of an all-zero block records a zero base (fresh
  /// allocations — replaying from zeros can never resurrect stale
  /// bytes), any other blind write gets no base and journals in full.
  class Txn {
   public:
    explicit Txn(InodeStore& store) : store_(store) {}
    Result<Bytes> ReadBlock(BlockIndex index);
    Status WriteBlock(BlockIndex index, Bytes data);
    Status Commit();
    /// True if the txn already read or wrote `index` (its preimage, if
    /// any, is already pinned).
    [[nodiscard]] bool Touched(BlockIndex index) const {
      return writes_.count(index) != 0 || preimages_.count(index) != 0;
    }

   private:
    friend class InodeStore;
    InodeStore& store_;
    std::map<BlockIndex, Bytes> writes_;
    std::map<BlockIndex, Preimage> preimages_;
  };

  // Bitmap helpers (in-memory copy; dirty blocks staged into the txn).
  [[nodiscard]] bool BitmapGet(BlockIndex block) const;
  void BitmapSet(BlockIndex block, bool used);
  Status StageBitmapBlock(BlockIndex data_block, Txn& txn);
  Result<BlockIndex> AllocDataBlock(Txn& txn);
  Status FreeDataBlock(BlockIndex block, bool scrub, Txn& txn);

  // Inode table addressing.
  [[nodiscard]] BlockIndex InodeBlock(InodeId id) const;
  [[nodiscard]] std::uint32_t InodeOffset(InodeId id) const;
  Result<Inode> LoadInode(InodeId id, Txn* txn) const;
  Status StoreInode(InodeId id, const Inode& inode, Txn& txn);

  /// Map a file-relative block number to a device block, optionally
  /// allocating (and wiring the indirect block) on demand.
  Result<BlockIndex> MapFileBlock(Inode& inode, std::uint64_t file_block,
                                  bool allocate, Txn& txn);
  /// Shared body of ReadAt/ReadAll, working from an already-loaded inode
  /// (so ReadAll costs one inode-table read, not two). Caller holds mu_.
  Result<Bytes> ReadRange(Inode inode, std::uint64_t offset,
                          std::uint64_t length) const;
  /// Enumerate all data blocks (direct, indirect pointees, and the
  /// indirect block itself last).
  Result<std::vector<BlockIndex>> ListDataBlocks(const Inode& inode) const;

  Status LoadBitmap();
  Status CheckId(InodeId id) const;

  blockdev::BlockDevice* device_;  // borrowed; outlives the store
  Superblock sb_;
  const Clock* clock_;             // borrowed
  Journal journal_;
  RetryPolicy io_retry_;
  RecoveryReport recovery_;
  bool journal_enabled_;
  bool crash_before_checkpoint_ = false;
  /// Final images of blocks whose in-place checkpoint was suppressed by
  /// crash_before_checkpoint_. A real OS would still serve these
  /// journal-committed writes from its page cache, so ReadBlockCoherent
  /// consults this map first: later transactions must capture extent
  /// preimages against the logical state replay will reconstruct, not
  /// the stale medium. Empty in normal operation.
  std::map<BlockIndex, Bytes> uncheckpointed_;
  std::vector<std::uint64_t> bitmap_;  // 1 bit per device block
  BlockIndex alloc_hint_ = 0;
  InodeId inode_hint_ = 1;  // lowest possibly-free inode slot

  /// Per-store lock; recursive so GroupCommitScope can hold it across
  /// public re-entry (and so WriteAll -> Truncate style internal nesting
  /// needs no *Locked split).
  mutable metrics::OrderedMutex mu_;
  // Group-commit state. Non-zero depth implies the owning thread holds
  // mu_ for the whole scope, so these need no further synchronisation.
  int group_depth_ = 0;
  std::vector<std::pair<BlockIndex, Bytes>> group_writes_;
  std::map<BlockIndex, std::size_t> group_write_index_;  // dedupe by block
  /// First-wins pre-images for the staged blocks: the txn that FIRST
  /// staged a block saw it in its pre-group state, so its preimage is
  /// the right diff base for the combined group record.
  std::map<BlockIndex, Preimage> group_preimages_;

  void StageGroupWrite(BlockIndex block, const Bytes& data,
                       const Preimage* preimage);
};

}  // namespace rgpdos::inodefs
