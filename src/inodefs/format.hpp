// On-device format of the inode filesystem substrate.
//
// The paper (§3, implementation) rearchitects uFS keeping "the
// implementation of the inode concept"; this module is that concept:
// a superblock, a block-allocation bitmap, a fixed inode table, a data
// journal and a data region. Both rgpdOS's DBFS trees and the NPD
// file-granularity filesystem are built from these inodes.
//
// Layout (in blocks):
//   [0]               superblock
//   [1 .. B]          allocation bitmap (1 bit per device block)
//   [B+1 .. I]        inode table (fixed-size 256-byte inodes)
//   [I+1 .. J]        journal region (circular byte log)
//   [J+1 .. end)      data region
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"

namespace rgpdos::inodefs {

using InodeId = std::uint32_t;
using BlockIndex = std::uint64_t;

inline constexpr std::uint32_t kSuperblockMagic = 0x52475046;  // "RGPF"
inline constexpr InodeId kInvalidInode = 0;  // inode 0 is reserved
inline constexpr std::uint32_t kInodeDiskSize = 256;
inline constexpr std::uint32_t kDirectBlocks = 12;

/// What an inode stores. The DBFS-specific kinds make the two inode trees
/// of the paper's §3 self-describing on the medium.
enum class InodeKind : std::uint8_t {
  kFree = 0,
  kFile,          ///< ordinary byte file (NPD filesystem)
  kDirectory,     ///< name -> inode map (NPD filesystem)
  kTableSchema,   ///< DBFS schema tree: table structure descriptor
  kSubjectIndex,  ///< DBFS schema tree: list of subject inodes for a table
  kSubjectRoot,   ///< DBFS subject tree: one subject's record list
  kPdRecord,      ///< DBFS subject tree: encoded PD row
  kMembrane,      ///< DBFS subject tree: the PD record's membrane
  kFormatHint,    ///< DBFS: encoding descriptor read once per session (§3)
};

/// In-memory inode image (serialised to kInodeDiskSize bytes).
struct Inode {
  InodeKind kind = InodeKind::kFree;
  std::uint8_t flags = 0;
  std::uint32_t nlink = 0;
  std::uint64_t size = 0;        ///< logical byte size of the content
  TimeMicros ctime = 0;
  TimeMicros mtime = 0;
  std::uint64_t generation = 0;  ///< bumped on every reuse of the slot
  std::array<BlockIndex, kDirectBlocks> direct{};
  BlockIndex indirect = 0;         ///< single-indirect block of BlockIndex[]
  BlockIndex double_indirect = 0;  ///< block of single-indirect blocks

  [[nodiscard]] Bytes Encode() const;
  static Result<Inode> Decode(ByteSpan bytes);
};

/// Filesystem geometry, derived once at format time.
struct Superblock {
  std::uint32_t magic = kSuperblockMagic;
  std::uint32_t block_size = 0;
  std::uint64_t block_count = 0;
  std::uint32_t inode_count = 0;
  BlockIndex bitmap_start = 0;
  std::uint64_t bitmap_blocks = 0;
  BlockIndex inode_table_start = 0;
  std::uint64_t inode_table_blocks = 0;
  BlockIndex journal_start = 0;
  std::uint64_t journal_blocks = 0;
  BlockIndex data_start = 0;
  InodeId root_dir = kInvalidInode;  ///< set by FileSystem::Format
  std::uint64_t journal_head = 0;    ///< byte offset into journal region
  std::uint64_t journal_seq = 0;     ///< next transaction sequence number

  [[nodiscard]] Bytes Encode() const;
  static Result<Superblock> Decode(ByteSpan bytes);

  /// Compute a layout for a device. `inode_count` and `journal_blocks`
  /// are caller choices (tests use small numbers, benches larger).
  static Result<Superblock> Plan(std::uint32_t block_size,
                                 std::uint64_t block_count,
                                 std::uint32_t inode_count,
                                 std::uint64_t journal_blocks);
};

}  // namespace rgpdos::inodefs
