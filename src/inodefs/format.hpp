// On-device format of the inode filesystem substrate.
//
// The paper (§3, implementation) rearchitects uFS keeping "the
// implementation of the inode concept"; this module is that concept:
// a superblock, a block-allocation bitmap, a fixed inode table, a data
// journal and a data region. Both rgpdOS's DBFS trees and the NPD
// file-granularity filesystem are built from these inodes.
//
// Layout (in blocks):
//   [0]               superblock
//   [1 .. B]          allocation bitmap (1 bit per device block)
//   [B+1 .. I]        inode table (fixed-size 256-byte inodes)
//   [I+1 .. J]        journal region (circular byte log)
//   [J+1 .. end)      data region
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"

namespace rgpdos::inodefs {

using InodeId = std::uint32_t;
using BlockIndex = std::uint64_t;

inline constexpr std::uint32_t kSuperblockMagic = 0x52475046;  // "RGPF"
inline constexpr InodeId kInvalidInode = 0;  // inode 0 is reserved
inline constexpr std::uint32_t kInodeDiskSize = 256;
inline constexpr std::uint32_t kDirectBlocks = 12;

/// What an inode stores. The DBFS-specific kinds make the two inode trees
/// of the paper's §3 self-describing on the medium.
enum class InodeKind : std::uint8_t {
  kFree = 0,
  kFile,          ///< ordinary byte file (NPD filesystem)
  kDirectory,     ///< name -> inode map (NPD filesystem)
  kTableSchema,   ///< DBFS schema tree: table structure descriptor
  kSubjectIndex,  ///< DBFS schema tree: list of subject inodes for a table
  kSubjectRoot,   ///< DBFS subject tree: one subject's record list
  kPdRecord,      ///< DBFS subject tree: encoded PD row
  kMembrane,      ///< DBFS subject tree: the PD record's membrane
  kFormatHint,    ///< DBFS: encoding descriptor read once per session (§3)
};

/// In-memory inode image (serialised to kInodeDiskSize bytes).
struct Inode {
  InodeKind kind = InodeKind::kFree;
  std::uint8_t flags = 0;
  std::uint32_t nlink = 0;
  std::uint64_t size = 0;        ///< logical byte size of the content
  TimeMicros ctime = 0;
  TimeMicros mtime = 0;
  std::uint64_t generation = 0;  ///< bumped on every reuse of the slot
  std::array<BlockIndex, kDirectBlocks> direct{};
  BlockIndex indirect = 0;         ///< single-indirect block of BlockIndex[]
  BlockIndex double_indirect = 0;  ///< block of single-indirect blocks

  [[nodiscard]] Bytes Encode() const;
  static Result<Inode> Decode(ByteSpan bytes);
};

/// Byte size of one superblock slot inside block 0. The superblock is
/// persisted into ALTERNATING slots (picked by sb_version parity), each
/// carrying its own CRC: a torn write can destroy at most the slot being
/// written, and Decode falls back to the other, previously valid one. A
/// single in-place image would brick the mount on the first torn
/// superblock write.
inline constexpr std::size_t kSuperblockSlotSize = 256;

/// Filesystem geometry, derived once at format time.
struct Superblock {
  std::uint32_t magic = kSuperblockMagic;
  std::uint32_t block_size = 0;
  std::uint64_t block_count = 0;
  std::uint32_t inode_count = 0;
  BlockIndex bitmap_start = 0;
  std::uint64_t bitmap_blocks = 0;
  BlockIndex inode_table_start = 0;
  std::uint64_t inode_table_blocks = 0;
  BlockIndex journal_start = 0;
  std::uint64_t journal_blocks = 0;
  BlockIndex data_start = 0;
  InodeId root_dir = kInvalidInode;  ///< set by FileSystem::Format
  std::uint64_t journal_head = 0;    ///< block offset into journal region
  std::uint64_t journal_seq = 0;     ///< next transaction sequence number
  /// Checkpoint watermark (exclusive): every journaled transaction with
  /// seq < this value is durably written in place. Replay skips such
  /// transactions — re-applying a stale journal record would REVERT a
  /// block to old content when the newer record that superseded it was
  /// wrapped over or scrubbed. Persisted (see Journal) before the head
  /// ever wraps and before a scrub, so the destroyed history is always
  /// provably checkpointed.
  std::uint64_t journal_checkpointed_seq = 0;
  /// Monotonic persist counter; selects the slot EncodeInto writes and
  /// lets Decode pick the newest valid slot.
  std::uint64_t sb_version = 0;

  /// Serialise into `block` (the current content of device block 0),
  /// bumping sb_version and overwriting only the slot it selects.
  void EncodeInto(Bytes& block);
  /// Parse block 0: returns the highest-version slot whose CRC checks
  /// out, or Corruption if neither slot is valid.
  static Result<Superblock> Decode(ByteSpan bytes);

  /// Compute a layout for a device. `inode_count` and `journal_blocks`
  /// are caller choices (tests use small numbers, benches larger).
  static Result<Superblock> Plan(std::uint32_t block_size,
                                 std::uint64_t block_count,
                                 std::uint32_t inode_count,
                                 std::uint64_t journal_blocks);
};

}  // namespace rgpdos::inodefs
