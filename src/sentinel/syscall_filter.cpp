#include "sentinel/syscall_filter.hpp"

namespace rgpdos::sentinel {

std::string_view SyscallName(Syscall syscall) {
  switch (syscall) {
    case Syscall::kOpen: return "open";
    case Syscall::kRead: return "read";
    case Syscall::kWrite: return "write";
    case Syscall::kClose: return "close";
    case Syscall::kSocket: return "socket";
    case Syscall::kConnect: return "connect";
    case Syscall::kSend: return "send";
    case Syscall::kRecv: return "recv";
    case Syscall::kExec: return "exec";
    case Syscall::kFork: return "fork";
    case Syscall::kGetTime: return "gettime";
    case Syscall::kAlloc: return "alloc";
    case Syscall::kExit: return "exit";
  }
  return "?";
}

FilterAction SyscallFilter::Evaluate(Syscall syscall) const {
  for (const FilterRule& rule : rules_) {
    if (!rule.match.has_value() || *rule.match == syscall) {
      return rule.action;
    }
  }
  return default_action_;
}

SyscallFilter SyscallFilter::PdProcessingProfile() {
  std::vector<FilterRule> rules;
  rules.push_back({Syscall::kGetTime, FilterAction::kAllow});
  rules.push_back({Syscall::kAlloc, FilterAction::kAllow});
  rules.push_back({Syscall::kExit, FilterAction::kAllow});
  rules.push_back({Syscall::kFork, FilterAction::kKill});
  rules.push_back({Syscall::kExec, FilterAction::kKill});
  // Everything else — open/read/write/socket/connect/send/recv — denied.
  return SyscallFilter(std::move(rules), FilterAction::kDeny);
}

SyscallFilter SyscallFilter::AllowAll() {
  return SyscallFilter({}, FilterAction::kAllow);
}

Status SyscallContext::Gate(Syscall syscall) {
  if (killed_) {
    return SyscallDenied("processing was killed by the syscall filter");
  }
  switch (filter_.Evaluate(syscall)) {
    case FilterAction::kAllow:
      ++allowed_;
      return Status::Ok();
    case FilterAction::kDeny:
      ++denied_;
      return SyscallDenied(std::string(SyscallName(syscall)) +
                           " is forbidden inside a PD processing");
    case FilterAction::kKill:
      killed_ = true;
      ++denied_;
      return SyscallDenied(std::string(SyscallName(syscall)) +
                           " killed the processing");
  }
  return Internal("unreachable");
}

Status SyscallContext::Write(ByteSpan data) {
  RGPD_RETURN_IF_ERROR(Gate(Syscall::kWrite));
  leaked_.insert(leaked_.end(), data.begin(), data.end());
  return Status::Ok();
}

Status SyscallContext::Send(ByteSpan data) {
  RGPD_RETURN_IF_ERROR(Gate(Syscall::kSend));
  leaked_.insert(leaked_.end(), data.begin(), data.end());
  return Status::Ok();
}

Status SyscallContext::Exec(const std::string& command) {
  RGPD_RETURN_IF_ERROR(Gate(Syscall::kExec));
  leaked_.insert(leaked_.end(), command.begin(), command.end());
  return Status::Ok();
}

Result<std::int64_t> SyscallContext::GetTime() {
  RGPD_RETURN_IF_ERROR(Gate(Syscall::kGetTime));
  return now_micros_;
}

Status SyscallContext::Alloc(std::size_t bytes) {
  (void)bytes;
  return Gate(Syscall::kAlloc);
}

}  // namespace rgpdos::sentinel
