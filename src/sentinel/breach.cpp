#include "sentinel/breach.hpp"

#include <algorithm>
#include <map>

#include "sentinel/audit_pipeline.hpp"

namespace rgpdos::sentinel {

namespace {
std::string DraftNotification(const BreachFinding& finding) {
  std::string out = "Art.33 draft: ";
  out += DomainName(finding.actor);
  out += " made ";
  out += std::to_string(finding.denied_attempts);
  out += " denied attempts against ";
  out += DomainName(finding.target);
  out += " within ";
  out +=
      std::to_string((finding.window_end - finding.window_start) /
                     kMicrosPerSecond);
  out += "s. All attempts were blocked by the sentinel; no PD left the "
         "system. Recommended measures: rotate credentials of the "
         "originating domain, review the audit trail, notify within 72h "
         "if any allowed access preceded the burst.";
  return out;
}
}  // namespace

std::vector<BreachFinding> DetectBreaches(
    const std::vector<AuditEntry>& entries, const BreachPolicy& policy) {
  // Group denials by (actor, target), then slide a window over each
  // group's time-ordered entries.
  std::map<std::pair<Domain, Domain>, std::vector<TimeMicros>> denials;
  for (const AuditEntry& entry : entries) {
    if (entry.allowed) continue;
    denials[{entry.request.subject, entry.request.object}].push_back(
        entry.at);
  }

  std::vector<BreachFinding> findings;
  for (auto& [key, times] : denials) {
    // The ring is time-ordered, but durable segments recovered after a
    // restart (or merged sources) need not be: order before sliding.
    std::sort(times.begin(), times.end());
    std::size_t window_start_index = 0;
    std::size_t best_count = 0;
    std::size_t best_start = 0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      while (times[i] - times[window_start_index] > policy.window) {
        ++window_start_index;
      }
      const std::size_t count = i - window_start_index + 1;
      if (count > best_count) {
        best_count = count;
        best_start = window_start_index;
      }
    }
    if (best_count >= policy.threshold) {
      BreachFinding finding;
      finding.actor = key.first;
      finding.target = key.second;
      finding.window_start = times[best_start];
      finding.window_end = times[best_start + best_count - 1];
      finding.denied_attempts = best_count;
      finding.notification = DraftNotification(finding);
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

std::vector<BreachFinding> DetectBreaches(const AuditSink& audit,
                                          const BreachPolicy& policy) {
  // Durable evidence first: the bounded ring evicts, the pipeline does
  // not, and an Art. 33 sweep that only sees the hot window would miss
  // any burst older than `capacity()` entries (the PR-9 regression).
  if (DurableAuditPipeline* pipeline = audit.pipeline()) {
    Result<std::vector<AuditEntry>> durable = pipeline->QueryDurable(
        [](const AuditEntry& entry) { return !entry.allowed; });
    if (durable.ok()) {
      return DetectBreaches(*durable, policy);
    }
    // A durable read error must not turn into "no breach": degrade to
    // the hot window rather than silently returning nothing.
  }
  std::vector<AuditEntry> entries = audit.Query(
      [](const AuditEntry& entry) { return !entry.allowed; });
  return DetectBreaches(entries, policy);
}

Result<std::vector<BreachFinding>> DetectBreaches(
    DurableAuditPipeline& pipeline, const BreachPolicy& policy) {
  RGPD_ASSIGN_OR_RETURN(
      std::vector<AuditEntry> denials,
      pipeline.QueryDurable(
          [](const AuditEntry& entry) { return !entry.allowed; }));
  return DetectBreaches(denials, policy);
}

}  // namespace rgpdos::sentinel
