#include "sentinel/breach.hpp"

#include <map>

namespace rgpdos::sentinel {

namespace {
std::string DraftNotification(const BreachFinding& finding) {
  std::string out = "Art.33 draft: ";
  out += DomainName(finding.actor);
  out += " made ";
  out += std::to_string(finding.denied_attempts);
  out += " denied attempts against ";
  out += DomainName(finding.target);
  out += " within ";
  out +=
      std::to_string((finding.window_end - finding.window_start) /
                     kMicrosPerSecond);
  out += "s. All attempts were blocked by the sentinel; no PD left the "
         "system. Recommended measures: rotate credentials of the "
         "originating domain, review the audit trail, notify within 72h "
         "if any allowed access preceded the burst.";
  return out;
}
}  // namespace

std::vector<BreachFinding> DetectBreaches(const AuditSink& audit,
                                          const BreachPolicy& policy) {
  // Group denials by (actor, target), then slide a window over each
  // group's (time-ordered) entries.
  std::map<std::pair<Domain, Domain>, std::vector<TimeMicros>> denials;
  for (const AuditEntry& entry : audit.entries()) {
    if (entry.allowed) continue;
    denials[{entry.request.subject, entry.request.object}].push_back(
        entry.at);
  }

  std::vector<BreachFinding> findings;
  for (const auto& [key, times] : denials) {
    std::size_t window_start_index = 0;
    std::size_t best_count = 0;
    std::size_t best_start = 0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      while (times[i] - times[window_start_index] > policy.window) {
        ++window_start_index;
      }
      const std::size_t count = i - window_start_index + 1;
      if (count > best_count) {
        best_count = count;
        best_start = window_start_index;
      }
    }
    if (best_count >= policy.threshold) {
      BreachFinding finding;
      finding.actor = key.first;
      finding.target = key.second;
      finding.window_start = times[best_start];
      finding.window_end = times[best_start + best_count - 1];
      finding.denied_attempts = best_count;
      finding.notification = DraftNotification(finding);
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

}  // namespace rgpdos::sentinel
