// Enclave memory — the SGX analogue of paper §3(3): "Different
// techniques can be used to ensure DED protection including TEEs like
// Intel SGX."
//
// A DED instance's working memory is allocated from an EnclaveRegion:
// every page is tagged with the owning domain and an epoch, and every
// access presents a capability token. Out-of-domain reads (the
// use-after-free scenario of Fig 2, or a curious co-resident process)
// are denied and audited; tearing the enclave down zeroes its pages and
// bumps the epoch so stale tokens are dead.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "sentinel/policy.hpp"

namespace rgpdos::sentinel {

/// Capability needed to touch enclave pages: domain + epoch. Tokens are
/// minted by the region and become useless after Teardown().
struct EnclaveToken {
  Domain domain = Domain::kOutside;
  std::uint64_t epoch = 0;
};

class EnclaveRegion {
 public:
  /// `owner` is the only domain whose tokens may access the pages;
  /// `sentinel` audits every denial.
  EnclaveRegion(Domain owner, std::size_t page_size, std::size_t page_count,
                Sentinel* sentinel)
      : owner_(owner),
        page_size_(page_size),
        pages_(page_count),
        sentinel_(sentinel) {
    for (auto& page : pages_) page.assign(page_size, 0);
  }

  /// Mint a token for the owning domain at the current epoch. Tokens for
  /// other domains can be minted too — they will simply be denied, which
  /// is what the tests (and the audit trail) want to see.
  [[nodiscard]] EnclaveToken Mint(Domain domain) const {
    return EnclaveToken{domain, epoch_};
  }

  Status Write(const EnclaveToken& token, std::size_t page,
               ByteSpan data);
  Result<Bytes> Read(const EnclaveToken& token, std::size_t page) const;

  /// Destroy the enclave's contents: pages are zeroed, the epoch bumps,
  /// all outstanding tokens die. (SGX EREMOVE analogue.)
  void Teardown();

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// Leak surface check: does any page contain `needle`?
  [[nodiscard]] bool ContainsPlaintext(ByteSpan needle) const;

 private:
  Status Check(const EnclaveToken& token, std::size_t page,
               Operation op) const;

  Domain owner_;
  std::size_t page_size_;
  std::vector<Bytes> pages_;
  Sentinel* sentinel_;  // borrowed
  std::uint64_t epoch_ = 1;
};

}  // namespace rgpdos::sentinel
