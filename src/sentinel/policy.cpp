#include "sentinel/policy.hpp"

#include "metrics/metrics.hpp"

namespace rgpdos::sentinel {

SecurityPolicy& SecurityPolicy::Allow(Domain subject, Domain object,
                                      Operation op) {
  allowed_.insert(Key{subject, object, op});
  return *this;
}

bool SecurityPolicy::Check(Domain subject, Domain object,
                           Operation op) const {
  return allowed_.count(Key{subject, object, op}) != 0;
}

SecurityPolicy SecurityPolicy::RgpdDefault() {
  SecurityPolicy p;
  // Rule (2): applications may only talk to PS, and only to register or
  // invoke processings.
  p.Allow(Domain::kApplication, Domain::kProcessingStore,
          Operation::kRegister);
  p.Allow(Domain::kApplication, Domain::kProcessingStore,
          Operation::kInvoke);
  // Rule (1): PS alone reads the stored-processing registry (modelled as
  // PS self-access) and instantiates DEDs.
  p.Allow(Domain::kProcessingStore, Domain::kProcessingStore,
          Operation::kRead);
  p.Allow(Domain::kProcessingStore, Domain::kDed, Operation::kInvoke);
  // Rule (4): only the DED touches DBFS, for the full CRUD set plus
  // erasure and export on behalf of the rights built-ins.
  p.Allow(Domain::kDed, Domain::kDbfs, Operation::kRead);
  p.Allow(Domain::kDed, Domain::kDbfs, Operation::kWrite);
  p.Allow(Domain::kDed, Domain::kDbfs, Operation::kCreate);
  p.Allow(Domain::kDed, Domain::kDbfs, Operation::kDelete);
  p.Allow(Domain::kDed, Domain::kDbfs, Operation::kErase);
  p.Allow(Domain::kDed, Domain::kDbfs, Operation::kExport);
  // Schema-tree reads: the DED needs them to build requests, PS to match
  // purposes against declared types/views, the sysadmin to administer.
  p.Allow(Domain::kDed, Domain::kDbfs, Operation::kReadSchema);
  p.Allow(Domain::kProcessingStore, Domain::kDbfs, Operation::kReadSchema);
  p.Allow(Domain::kSysadmin, Domain::kDbfs, Operation::kReadSchema);
  // Sysadmin: type administration in DBFS (schema tree) and alert
  // approval in PS — but no PD record access.
  p.Allow(Domain::kSysadmin, Domain::kDbfs, Operation::kCreate);
  p.Allow(Domain::kSysadmin, Domain::kProcessingStore, Operation::kApprove);
  p.Allow(Domain::kSysadmin, Domain::kProcessingStore, Operation::kRegister);
  // The supervisory authority may decrypt escrowed erasures; it never
  // touches live DBFS state.
  p.Allow(Domain::kAuthority, Domain::kAuthority, Operation::kRead);
  return p;
}

Status Sentinel::Enforce(const AccessRequest& request) {
  const bool allowed =
      policy_.Check(request.subject, request.object, request.op);
  AuditEntry entry;
  entry.at = clock_->Now();
  entry.request = request;
  entry.allowed = allowed;
  entry.rule = allowed ? "allow" : "default-deny";
  audit_->Record(std::move(entry));
  if (allowed) {
    RGPD_METRIC_COUNT("sentinel.enforce.allowed");
  } else {
    RGPD_METRIC_COUNT("sentinel.enforce.denied");
  }
  if (!allowed) {
    return AccessBlocked(std::string(DomainName(request.subject)) +
                         " may not " +
                         std::string(OperationName(request.op)) + " " +
                         std::string(DomainName(request.object)) +
                         (request.detail.empty() ? ""
                                                 : " (" + request.detail +
                                                       ")"));
  }
  return Status::Ok();
}

}  // namespace rgpdos::sentinel
