#include "sentinel/audit.hpp"

#include "metrics/metrics.hpp"

namespace rgpdos::sentinel {

void AuditSink::Record(AuditEntry entry) {
  if (entry.allowed) {
    allowed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    denied_.fetch_add(1, std::memory_order_relaxed);
  }
  RGPD_METRIC_COUNT("sentinel.audit.entries");
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  entries_.push_back(std::move(entry));
  TrimLocked();
}

void AuditSink::TrimLocked() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    entries_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    RGPD_METRIC_COUNT("sentinel.audit.dropped");
  }
}

void AuditSink::SetCapacity(std::size_t capacity) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  capacity_ = capacity;
  TrimLocked();
}

std::uint64_t AuditSink::entry_count() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return entries_.size();
}

std::vector<AuditEntry> AuditSink::Query(
    const std::function<bool(const AuditEntry&)>& predicate) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::vector<AuditEntry> out;
  for (const AuditEntry& e : entries_) {
    if (predicate(e)) out.push_back(e);
  }
  return out;
}

void AuditSink::Clear() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  entries_.clear();
  allowed_.store(0, std::memory_order_relaxed);
  denied_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace rgpdos::sentinel
