#include "sentinel/audit.hpp"

#include "metrics/metrics.hpp"
#include "sentinel/audit_pipeline.hpp"

namespace rgpdos::sentinel {

void AuditSink::Record(AuditEntry entry) {
  if (entry.allowed) {
    allowed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    denied_.fetch_add(1, std::memory_order_relaxed);
  }
  RGPD_METRIC_COUNT("sentinel.audit.entries");

  // Durable handoff FIRST, and without mu_: Enqueue may block under
  // backpressure, and a producer stalled on the writer must not also
  // stall every other auditor on the sink lock.
  DurableAuditPipeline* pipeline = pipeline_.load(std::memory_order_acquire);
  if (pipeline != nullptr && !pipeline->Enqueue(entry)) {
    // Backpressure deadline expired or the pipeline is stopped: this
    // entry will never be durable. Count the loss exactly once, here.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    RGPD_METRIC_COUNT("sentinel.audit.dropped");
  }

  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (capacity_ == 0) {
    // Retain-nothing ring: the entry never lands. Without a pipeline
    // that is evidence loss and is counted as such (with one, the
    // enqueue above already settled the entry's fate either way).
    if (pipeline == nullptr) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      RGPD_METRIC_COUNT("sentinel.audit.dropped");
    }
    return;
  }
  entries_.push_back(std::move(entry));
  TrimLocked(/*durably_held=*/pipeline != nullptr);
}

void AuditSink::TrimLocked(bool durably_held) {
  if (capacity_ == kUnbounded) return;
  while (entries_.size() > capacity_) {
    entries_.pop_front();
    if (durably_held) {
      evicted_.fetch_add(1, std::memory_order_relaxed);
      RGPD_METRIC_COUNT("sentinel.audit.evicted");
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      RGPD_METRIC_COUNT("sentinel.audit.dropped");
    }
  }
}

void AuditSink::SetCapacity(std::size_t capacity) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  capacity_ = capacity;
  // Entries already handed to an attached pipeline are durably held;
  // a boot-time re-bound with a pipeline attached is bookkeeping.
  TrimLocked(pipeline_.load(std::memory_order_relaxed) != nullptr);
}

std::uint64_t AuditSink::entry_count() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return entries_.size();
}

std::vector<AuditEntry> AuditSink::Query(
    const std::function<bool(const AuditEntry&)>& predicate) const {
  // Snapshot under the lock; run the caller's predicate OUTSIDE it. A
  // predicate that touches another locked subsystem (or this sink) must
  // not deadlock or invert lock ranks.
  std::deque<AuditEntry> snapshot;
  {
    std::lock_guard<metrics::OrderedMutex> lock(mu_);
    snapshot = entries_;
  }
  std::vector<AuditEntry> out;
  for (AuditEntry& e : snapshot) {
    if (predicate(e)) out.push_back(std::move(e));
  }
  return out;
}

void AuditSink::Clear() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  // Only the hot window empties. allowed_/denied_/dropped_/evicted_ are
  // lifetime evidence tallies; zeroing dropped_ here used to erase the
  // only trace that entries had ever been lost.
  entries_.clear();
}

}  // namespace rgpdos::sentinel
