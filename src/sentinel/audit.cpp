#include "sentinel/audit.hpp"

#include "metrics/metrics.hpp"

namespace rgpdos::sentinel {

void AuditSink::Record(AuditEntry entry) {
  if (entry.allowed) {
    ++allowed_;
  } else {
    ++denied_;
  }
  RGPD_METRIC_COUNT("sentinel.audit.entries");
  entries_.push_back(std::move(entry));
}

std::vector<AuditEntry> AuditSink::Query(
    const std::function<bool(const AuditEntry&)>& predicate) const {
  std::vector<AuditEntry> out;
  for (const AuditEntry& e : entries_) {
    if (predicate(e)) out.push_back(e);
  }
  return out;
}

void AuditSink::Clear() {
  entries_.clear();
  allowed_ = 0;
  denied_ = 0;
}

}  // namespace rgpdos::sentinel
