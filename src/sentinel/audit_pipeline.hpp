// DurableAuditPipeline — async durable backend of the AuditSink
// (DESIGN.md §14).
//
// Producers (every enforcement hook in the stack) enqueue AuditEntry
// values into a bounded queue; one background writer thread drains them
// in batches, assigns sequence numbers, SHA-256 hash-chains each entry
// (same discipline as ProcessingLog), and appends the encoded batch to a
// SegmentedLog on the DBFS inode store — compressed, CRC'd, sealed
// segments that LoadEntries() re-verifies across a restart.
//
// Overflow policy is BACKPRESSURE, not drop: when the queue is full,
// Enqueue blocks (releasing no other lock — see the rank analysis below)
// until the writer frees a slot or `backpressure_deadline_micros`
// elapses. Only a deadline expiry loses the entry, and that loss is
// loud: sentinel.audit.backpressure.timeout and the sink's dropped
// counter both move. The metrics tell the whole story:
//
//   sentinel.audit.backpressure.blocked   producers that had to wait
//   sentinel.audit.backpressure.wait_us   how long they waited
//   sentinel.audit.backpressure.timeout   entries lost to the deadline
//   sentinel.audit.persisted              entries durably appended
//   sentinel.audit.write_errors           entries lost to store IO errors
//
// Lock ranks: the queue mutex ranks kSentinel (60), same as the
// AuditSink ring — legal from every producer that can already Record.
// The writer thread acquires the queue lock and the store lock (rank 40)
// strictly in decreasing rank order and never holds the queue lock
// across store IO, so producers are never blocked on device latency,
// only on genuine queue saturation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "auditlog/segmented_log.hpp"
#include "metrics/lock.hpp"
#include "sentinel/audit.hpp"

namespace rgpdos::sentinel {

struct AuditPipelineOptions {
  /// Bounded producer queue (entries). Full = backpressure.
  std::size_t queue_capacity = 8192;
  /// Max entries the writer drains per wakeup (one durable append).
  std::size_t batch_entries = 256;
  /// How long a producer blocks on a full queue before giving up and
  /// counting the entry dropped. 0 = fail immediately when full.
  std::uint64_t backpressure_deadline_micros = 2'000'000;
  auditlog::SegmentedLogOptions segments;
};

class DurableAuditPipeline {
 public:
  /// Bring up the pipeline over `manifest_inode` (caller-allocated on
  /// `store`): an empty inode is initialised fresh; an existing manifest
  /// is mounted with full chain verification, so appends continue the
  /// pre-restart chain seamlessly.
  static Result<std::unique_ptr<DurableAuditPipeline>> Create(
      inodefs::InodeStore* store, inodefs::InodeId manifest_inode,
      const AuditPipelineOptions& options);

  ~DurableAuditPipeline();
  DurableAuditPipeline(const DurableAuditPipeline&) = delete;
  DurableAuditPipeline& operator=(const DurableAuditPipeline&) = delete;

  /// Hand one entry to the writer. Blocks under backpressure (see file
  /// comment); false = the deadline expired or the pipeline is stopped,
  /// and the entry was NOT accepted (caller accounts the drop).
  bool Enqueue(AuditEntry entry);

  /// Drain everything enqueued so far to the store. Returns the writer's
  /// first error since the last Flush (entries behind an IO error are
  /// counted in lost_entries(), not silently forgotten).
  Status Flush();

  /// Flush, stop the writer thread and join it. Idempotent; the
  /// destructor calls it.
  void Stop();

  /// Entries durably appended (including those recovered at mount).
  [[nodiscard]] std::uint64_t durable_entries() const {
    return durable_entries_.load(std::memory_order_relaxed);
  }
  /// Entries lost to backpressure deadlines or store IO errors.
  [[nodiscard]] std::uint64_t lost_entries() const {
    return lost_entries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t backpressure_timeouts() const {
    return backpressure_timeouts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t backpressure_waits() const {
    return backpressure_waits_.load(std::memory_order_relaxed);
  }

  /// Flush, then scan the durable log (sealed segments + active tail)
  /// for entries matching `predicate`, in chain order.
  Result<std::vector<AuditEntry>> QueryDurable(
      const std::function<bool(const AuditEntry&)>& predicate);

  /// Decode + chain-verify the whole durable log from `store` — the
  /// remount/regulator entry point (also usable on a store this pipeline
  /// instance doesn't own, e.g. after crash recovery).
  static Result<std::vector<AuditEntry>> LoadEntries(
      inodefs::InodeStore* store, inodefs::InodeId manifest_inode);

  /// Test hook: freeze the writer so backpressure can be provoked
  /// deterministically.
  void SetWriterPausedForTest(bool paused);

  /// Durable entry codec (exposed for tests and the exporter).
  static Bytes EncodeEntry(const AuditEntry& entry);
  static Result<AuditEntry> DecodeEntry(ByteReader& reader);
  static crypto::Sha256Digest HashEntry(const AuditEntry& entry,
                                        const crypto::Sha256Digest& prev);

 private:
  explicit DurableAuditPipeline(const AuditPipelineOptions& options);

  void WriterLoop();

  const AuditPipelineOptions options_;
  std::unique_ptr<auditlog::SegmentedLog> log_;

  mutable metrics::OrderedMutex mu_{metrics::LockRank::kSentinel,
                                    "sentinel.audit.queue"};
  /// Serialises store-facing SegmentedLog use (writer batches vs
  /// QueryDurable scans). Never taken while holding mu_.
  mutable metrics::OrderedMutex log_mu_{metrics::LockRank::kSentinel,
                                        "sentinel.audit.log"};
  std::condition_variable_any not_full_;
  std::condition_variable_any not_empty_;
  std::condition_variable_any drained_;
  std::deque<AuditEntry> queue_;
  bool stop_ = false;
  bool paused_ = false;
  std::uint64_t enqueued_total_ = 0;  ///< accepted into the queue, ever
  std::uint64_t written_total_ = 0;   ///< left the writer (ok or lost)
  Status last_error_;                  ///< first writer error since Flush

  // Writer-thread-only chain state (initialised before the thread
  // starts, then touched exclusively by WriterLoop).
  std::uint64_t next_seq_ = 0;
  crypto::Sha256Digest chain_tail_{};

  std::atomic<std::uint64_t> durable_entries_{0};
  std::atomic<std::uint64_t> lost_entries_{0};
  std::atomic<std::uint64_t> backpressure_timeouts_{0};
  std::atomic<std::uint64_t> backpressure_waits_{0};

  std::thread writer_;
  bool joined_ = false;
};

}  // namespace rgpdos::sentinel
