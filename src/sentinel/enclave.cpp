#include "sentinel/enclave.hpp"

namespace rgpdos::sentinel {

Status EnclaveRegion::Check(const EnclaveToken& token, std::size_t page,
                            Operation op) const {
  if (page >= pages_.size()) {
    return OutOfRange("enclave page out of range");
  }
  const bool allowed = token.domain == owner_ && token.epoch == epoch_;
  AuditEntry entry;
  AccessRequest request;
  request.subject = token.domain;
  request.object = owner_;
  request.op = op;
  request.detail = "enclave page " + std::to_string(page) +
                   (token.epoch != epoch_ ? " (stale epoch)" : "");
  // Record through the sentinel's audit sink directly: enclave access is
  // not a policy-matrix decision but an ownership+epoch one.
  entry.request = std::move(request);
  entry.allowed = allowed;
  entry.rule = allowed ? "enclave-owner" : "enclave-deny";
  sentinel_->audit().Record(std::move(entry));
  if (!allowed) {
    return AccessBlocked(
        std::string(DomainName(token.domain)) +
        (token.epoch != epoch_ ? " presented a stale enclave token"
                               : " is not the enclave owner"));
  }
  return Status::Ok();
}

Status EnclaveRegion::Write(const EnclaveToken& token, std::size_t page,
                            ByteSpan data) {
  RGPD_RETURN_IF_ERROR(Check(token, page, Operation::kWrite));
  if (data.size() > page_size_) {
    return InvalidArgument("write exceeds enclave page size");
  }
  std::copy(data.begin(), data.end(), pages_[page].begin());
  return Status::Ok();
}

Result<Bytes> EnclaveRegion::Read(const EnclaveToken& token,
                                  std::size_t page) const {
  RGPD_RETURN_IF_ERROR(Check(token, page, Operation::kRead));
  return pages_[page];
}

void EnclaveRegion::Teardown() {
  for (auto& page : pages_) page.assign(page_size_, 0);
  ++epoch_;
}

bool EnclaveRegion::ContainsPlaintext(ByteSpan needle) const {
  for (const Bytes& page : pages_) {
    if (ContainsSubsequence(page, needle)) return true;
  }
  return false;
}

}  // namespace rgpdos::sentinel
