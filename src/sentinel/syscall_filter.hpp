// Seccomp-BPF analogue: the emulated syscall surface offered to
// operator-written F_pd^r functions, and the filter programs that
// constrain it.
//
// Paper §2: "F_pd^r functions are forbidden to make syscalls that could
// leak PD (e.g., write)" — and §3(2): "We leverage Linux Seccomp BPF to
// avoid functions which operate on PD to perform syscalls that can leak
// data." In this user-space emulation, processing functions receive a
// SyscallContext instead of raw OS access; every call traverses a
// BPF-style rule program evaluated first-match-wins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace rgpdos::sentinel {

/// The emulated syscall table.
enum class Syscall : std::uint8_t {
  kOpen = 0,
  kRead,
  kWrite,
  kClose,
  kSocket,
  kConnect,
  kSend,
  kRecv,
  kExec,
  kFork,
  kGetTime,   ///< harmless: reading the clock
  kAlloc,     ///< memory allocation (brk/mmap analogue)
  kExit,
};

std::string_view SyscallName(Syscall syscall);
inline constexpr std::size_t kSyscallCount =
    static_cast<std::size_t>(Syscall::kExit) + 1;

enum class FilterAction : std::uint8_t {
  kAllow = 0,
  kDeny,   ///< call fails with kSyscallDenied; processing may continue
  kKill,   ///< processing is aborted (seccomp SECCOMP_RET_KILL analogue)
};

/// One BPF-style rule. `match == nullopt` matches every syscall.
struct FilterRule {
  std::optional<Syscall> match;
  FilterAction action = FilterAction::kDeny;
};

/// First-match-wins rule program with a default action.
class SyscallFilter {
 public:
  SyscallFilter() = default;
  explicit SyscallFilter(std::vector<FilterRule> rules,
                         FilterAction default_action = FilterAction::kDeny)
      : rules_(std::move(rules)), default_action_(default_action) {}

  [[nodiscard]] FilterAction Evaluate(Syscall syscall) const;

  /// The profile applied to F_pd^r code: clock reads, allocation and
  /// clean exit are allowed; write/send/exec and friends are denied;
  /// fork is killed outright.
  static SyscallFilter PdProcessingProfile();
  /// Wide-open profile (used by F_npd code and ablation benches).
  static SyscallFilter AllowAll();

 private:
  std::vector<FilterRule> rules_;
  FilterAction default_action_ = FilterAction::kDeny;
};

/// The syscall surface handed to processing functions. Effects are
/// recorded, not performed: a *leak buffer* captures what WOULD have
/// escaped had the call been allowed, so tests can assert both that
/// denials happen and that nothing escapes when they do.
class SyscallContext {
 public:
  explicit SyscallContext(SyscallFilter filter, std::int64_t now_micros = 0)
      : filter_(std::move(filter)), now_micros_(now_micros) {}

  /// Attempted writes land in the leak buffer only when allowed.
  Status Write(ByteSpan data);
  Status Send(ByteSpan data);
  Status Exec(const std::string& command);
  Result<std::int64_t> GetTime();
  Status Alloc(std::size_t bytes);

  /// True once a kKill rule fired; the DED aborts the processing.
  [[nodiscard]] bool killed() const { return killed_; }
  /// Everything that escaped through allowed write/send calls.
  [[nodiscard]] const Bytes& leaked() const { return leaked_; }
  [[nodiscard]] std::uint64_t denied_calls() const { return denied_; }
  [[nodiscard]] std::uint64_t allowed_calls() const { return allowed_; }

 private:
  Status Gate(Syscall syscall);

  SyscallFilter filter_;
  std::int64_t now_micros_;
  Bytes leaked_;
  bool killed_ = false;
  std::uint64_t denied_ = 0;
  std::uint64_t allowed_ = 0;
};

}  // namespace rgpdos::sentinel
