// Breach detection over the audit trail (GDPR Art. 33: the controller
// must notify the supervisory authority of a personal data breach within
// 72 hours of becoming aware of it).
//
// The sentinel's audit sink records every denied access; this detector
// turns denial bursts into breach findings a controller can act on: who
// probed, what they probed, over which window, and whether PD was
// actually reachable (denials mean the attempt FAILED — under rgpdOS a
// "freely accessible server" scenario surfaces here as a pile of denials
// instead of a silent exfiltration).
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "sentinel/audit.hpp"

namespace rgpdos::sentinel {

struct BreachFinding {
  Domain actor = Domain::kOutside;   ///< who attempted
  Domain target = Domain::kDbfs;     ///< what they went after
  TimeMicros window_start = 0;
  TimeMicros window_end = 0;
  std::size_t denied_attempts = 0;
  /// Art. 33 notification draft ("likely consequences", "measures").
  std::string notification;
};

struct BreachPolicy {
  /// Denials from one actor against one target within `window` that
  /// trigger a finding.
  std::size_t threshold = 5;
  TimeMicros window = 60 * kMicrosPerSecond;
};

/// Scan a set of audit entries for denial bursts. Pure and idempotent;
/// entries need not be time-ordered. This is the core the sink / durable
/// overloads share, and the right entry point for entries recovered at
/// remount via DurableAuditPipeline::LoadEntries.
std::vector<BreachFinding> DetectBreaches(
    const std::vector<AuditEntry>& entries, const BreachPolicy& policy);

/// Scan the audit trail for denial bursts. When a DurableAuditPipeline
/// is attached, the scan runs over the DURABLE log (a superset of the
/// ring — every Record is handed to the pipeline before the ring can
/// evict it), so bursts that aged out of the bounded ring are still
/// found; without one, the in-memory ring is all the evidence there is.
/// Idempotent, suitable for periodic sweeps or post-incident forensics.
std::vector<BreachFinding> DetectBreaches(const AuditSink& audit,
                                          const BreachPolicy& policy);

/// Scan a durable audit pipeline directly (e.g. after a restart, before
/// any sink is re-attached). Flushes, then reads sealed segments + tail.
Result<std::vector<BreachFinding>> DetectBreaches(
    DurableAuditPipeline& pipeline, const BreachPolicy& policy);

}  // namespace rgpdos::sentinel
