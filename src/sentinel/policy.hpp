// Deny-by-default access policy + the Sentinel hook dispatcher.
//
// Encodes the paper's four enforcement restrictions (§2, "Enforcement"):
//   (1) PS is the only component able to access stored processings;
//   (2) PS is the only entry point to invoke a processing;
//   (3) every PD stored in DBFS must have a membrane attached;
//   (4) DED is the only component able to access DBFS directly.
// (3) is structural and enforced inside DBFS's write path; (1), (2) and
// (4) are label checks implemented here.
#pragma once

#include <memory>
#include <set>
#include <tuple>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "sentinel/audit.hpp"
#include "sentinel/domain.hpp"

namespace rgpdos::sentinel {

class SecurityPolicy {
 public:
  /// Everything is denied until allowed.
  SecurityPolicy() = default;

  SecurityPolicy& Allow(Domain subject, Domain object, Operation op);
  [[nodiscard]] bool Check(Domain subject, Domain object,
                           Operation op) const;

  /// The rgpdOS default policy implementing enforcement rules (1), (2),
  /// (4) and the authority's escrow access.
  static SecurityPolicy RgpdDefault();

 private:
  using Key = std::tuple<Domain, Domain, Operation>;
  std::set<Key> allowed_;
};

/// Hook dispatcher: every guarded component calls Enforce() before acting.
/// Decisions are appended to the audit sink either way.
///
/// Thread-safety: the policy table is immutable after construction and
/// the audit sink locks internally (rank kSentinel), so Enforce() may be
/// called concurrently from any layer of the PD path.
class Sentinel {
 public:
  Sentinel(SecurityPolicy policy, const Clock* clock, AuditSink* audit)
      : policy_(std::move(policy)), clock_(clock), audit_(audit) {}

  /// Ok, or kAccessBlocked with the denial recorded in the audit trail.
  Status Enforce(const AccessRequest& request);

  [[nodiscard]] AuditSink& audit() { return *audit_; }
  [[nodiscard]] const SecurityPolicy& policy() const { return policy_; }

 private:
  SecurityPolicy policy_;
  const Clock* clock_;  // borrowed
  AuditSink* audit_;    // borrowed
};

}  // namespace rgpdos::sentinel
