// Security domains and operations — the label vocabulary of the LSM
// analogue. The paper relies on the Linux Security Module framework
// (SELinux/Smack) to guarantee that "DBFS is not visible from the outside
// and every direct access attempt from the outside is blocked" (§2); here
// every component carries a Domain label and every sensitive operation is
// checked against a deny-by-default policy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rgpdos::sentinel {

enum class Domain : std::uint8_t {
  kOutside = 0,        ///< anything not part of the rgpdOS TCB (other hosts,
                       ///< processes on the general-purpose kernel)
  kApplication,        ///< the main application (F_npd code)
  kGeneralKernel,      ///< general-purpose kernel (NPD only)
  kIoKernel,           ///< an IO driver kernel
  kProcessingStore,    ///< PS — the only rgpdOS entry point
  kDed,                ///< a Data Execution Domain instance
  kDbfs,               ///< the database-oriented filesystem
  kSysadmin,           ///< the data operator's administrative role
  kAuthority,          ///< the supervisory authority (key escrow holder)
};

std::string_view DomainName(Domain domain);

enum class Operation : std::uint8_t {
  kRead = 0,
  kReadSchema,  ///< read type declarations (schema tree), not PD records
  kWrite,
  kCreate,
  kDelete,
  kInvoke,    ///< invoke a stored processing / instantiate a DED
  kRegister,  ///< register a processing in PS
  kApprove,   ///< sysadmin approval of a purpose-mismatch alert
  kExport,    ///< structured export (right of access / portability)
  kErase,     ///< right-to-be-forgotten erasure
};

std::string_view OperationName(Operation op);

/// One access attempt, as seen by a security hook.
struct AccessRequest {
  Domain subject = Domain::kOutside;
  Domain object = Domain::kDbfs;
  Operation op = Operation::kRead;
  /// Free-text context for the audit trail ("table=user subject=42").
  std::string detail;
};

}  // namespace rgpdos::sentinel
