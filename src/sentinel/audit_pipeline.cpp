#include "sentinel/audit_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/log.hpp"
#include "crypto/hmac.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::sentinel {

crypto::Sha256Digest DurableAuditPipeline::HashEntry(
    const AuditEntry& entry, const crypto::Sha256Digest& prev) {
  ByteWriter w;
  w.PutU64(entry.seq);
  w.PutI64(entry.at);
  w.PutU8(static_cast<std::uint8_t>(entry.request.subject));
  w.PutU8(static_cast<std::uint8_t>(entry.request.object));
  w.PutU8(static_cast<std::uint8_t>(entry.request.op));
  w.PutString(entry.request.detail);
  w.PutBool(entry.allowed);
  w.PutString(entry.rule);
  w.PutRaw(ByteSpan(prev.data(), prev.size()));
  return crypto::Sha256Hash(w.buffer());
}

Bytes DurableAuditPipeline::EncodeEntry(const AuditEntry& entry) {
  ByteWriter w;
  w.PutU64(entry.seq);
  w.PutI64(entry.at);
  w.PutU8(static_cast<std::uint8_t>(entry.request.subject));
  w.PutU8(static_cast<std::uint8_t>(entry.request.object));
  w.PutU8(static_cast<std::uint8_t>(entry.request.op));
  w.PutString(entry.request.detail);
  w.PutBool(entry.allowed);
  w.PutString(entry.rule);
  w.PutRaw(ByteSpan(entry.chain.data(), entry.chain.size()));
  return w.Take();
}

Result<AuditEntry> DurableAuditPipeline::DecodeEntry(ByteReader& reader) {
  AuditEntry entry;
  RGPD_ASSIGN_OR_RETURN(entry.seq, reader.GetU64());
  RGPD_ASSIGN_OR_RETURN(entry.at, reader.GetI64());
  RGPD_ASSIGN_OR_RETURN(std::uint8_t subject, reader.GetU8());
  RGPD_ASSIGN_OR_RETURN(std::uint8_t object, reader.GetU8());
  RGPD_ASSIGN_OR_RETURN(std::uint8_t op, reader.GetU8());
  if (subject > static_cast<std::uint8_t>(Domain::kAuthority) ||
      object > static_cast<std::uint8_t>(Domain::kAuthority) ||
      op > static_cast<std::uint8_t>(Operation::kErase)) {
    return Corruption("audit log: unknown domain/operation code");
  }
  entry.request.subject = static_cast<Domain>(subject);
  entry.request.object = static_cast<Domain>(object);
  entry.request.op = static_cast<Operation>(op);
  RGPD_ASSIGN_OR_RETURN(entry.request.detail, reader.GetString());
  RGPD_ASSIGN_OR_RETURN(entry.allowed, reader.GetBool());
  RGPD_ASSIGN_OR_RETURN(entry.rule, reader.GetString());
  RGPD_ASSIGN_OR_RETURN(Bytes chain,
                        reader.GetRaw(crypto::kSha256DigestSize));
  std::copy(chain.begin(), chain.end(), entry.chain.begin());
  return entry;
}

namespace {
/// Decode + chain-verify one raw stream fragment, continuing from
/// `prev`. On success `prev` holds the new chain tail.
Status DecodeVerifiedStream(ByteSpan raw, std::uint64_t* next_seq,
                            crypto::Sha256Digest* prev,
                            std::vector<AuditEntry>* out) {
  ByteReader reader(raw);
  while (!reader.exhausted()) {
    RGPD_ASSIGN_OR_RETURN(AuditEntry entry,
                          DurableAuditPipeline::DecodeEntry(reader));
    if (entry.seq != *next_seq) {
      return Corruption("audit log: sequence gap at " +
                        std::to_string(entry.seq) + " (expected " +
                        std::to_string(*next_seq) + ")");
    }
    if (!crypto::DigestEqual(
            DurableAuditPipeline::HashEntry(entry, *prev), entry.chain)) {
      return Corruption("audit log: hash chain broken at seq " +
                        std::to_string(entry.seq));
    }
    *prev = entry.chain;
    ++*next_seq;
    if (out != nullptr) out->push_back(std::move(entry));
  }
  return Status::Ok();
}
}  // namespace

DurableAuditPipeline::DurableAuditPipeline(
    const AuditPipelineOptions& options)
    : options_(options) {}

Result<std::unique_ptr<DurableAuditPipeline>> DurableAuditPipeline::Create(
    inodefs::InodeStore* store, inodefs::InodeId manifest_inode,
    const AuditPipelineOptions& options) {
  std::unique_ptr<DurableAuditPipeline> pipeline(
      new DurableAuditPipeline(options));
  RGPD_ASSIGN_OR_RETURN(Bytes manifest, store->ReadAll(manifest_inode));
  if (manifest.empty()) {
    RGPD_ASSIGN_OR_RETURN(
        pipeline->log_,
        auditlog::SegmentedLog::Create(store, manifest_inode,
                                       options.segments));
  } else {
    RGPD_ASSIGN_OR_RETURN(
        pipeline->log_,
        auditlog::SegmentedLog::Mount(store, manifest_inode,
                                      options.segments));
    // Decode + verify the active tail so appends continue the chain; the
    // sealed prefix was already verified by Mount.
    std::uint64_t next_seq = pipeline->log_->sealed_entry_total();
    crypto::Sha256Digest tail = pipeline->log_->chain_tail();
    std::uint32_t active_entries = 0;
    {
      std::vector<AuditEntry> active;
      const Bytes& raw = pipeline->log_->active_raw();
      RGPD_RETURN_IF_ERROR(
          DecodeVerifiedStream(raw, &next_seq, &tail, &active));
      active_entries = static_cast<std::uint32_t>(active.size());
    }
    pipeline->log_->AdoptActiveState(active_entries, tail);
    pipeline->next_seq_ = next_seq;
    pipeline->chain_tail_ = tail;
    pipeline->durable_entries_.store(next_seq, std::memory_order_relaxed);
  }
  pipeline->writer_ = std::thread(&DurableAuditPipeline::WriterLoop,
                                  pipeline.get());
  return pipeline;
}

DurableAuditPipeline::~DurableAuditPipeline() { Stop(); }

bool DurableAuditPipeline::Enqueue(AuditEntry entry) {
  using Clock = std::chrono::steady_clock;
  std::unique_lock<metrics::OrderedMutex> lock(mu_);
  if (stop_) return false;
  if (queue_.size() >= options_.queue_capacity) {
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
    RGPD_METRIC_COUNT("sentinel.audit.backpressure.blocked");
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::microseconds(options_.backpressure_deadline_micros);
    const bool freed = not_full_.wait_until(lock, deadline, [this] {
      return stop_ || queue_.size() < options_.queue_capacity;
    });
    RGPD_METRIC_COUNT_N(
        "sentinel.audit.backpressure.wait_us",
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count()));
    if (!freed || stop_) {
      if (!stop_) {
        backpressure_timeouts_.fetch_add(1, std::memory_order_relaxed);
        RGPD_METRIC_COUNT("sentinel.audit.backpressure.timeout");
      }
      lost_entries_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  queue_.push_back(std::move(entry));
  ++enqueued_total_;
  RGPD_METRIC_GAUGE_SET("sentinel.audit.queue_depth",
                        static_cast<std::int64_t>(queue_.size()));
  not_empty_.notify_one();
  return true;
}

void DurableAuditPipeline::WriterLoop() {
  for (;;) {
    std::vector<AuditEntry> batch;
    {
      std::unique_lock<metrics::OrderedMutex> lock(mu_);
      not_empty_.wait(lock, [this] {
        return (!queue_.empty() && !paused_) || stop_;
      });
      if (queue_.empty() && stop_) return;
      if (paused_ && !stop_) continue;  // re-check after spurious wake
      const std::size_t take =
          std::min(queue_.size(), options_.batch_entries);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      RGPD_METRIC_GAUGE_SET("sentinel.audit.queue_depth",
                            static_cast<std::int64_t>(queue_.size()));
      not_full_.notify_all();
    }

    // Seq + chain assignment happens outside any lock: the writer is the
    // sole owner of the chain state.
    ByteWriter encoded;
    for (AuditEntry& entry : batch) {
      entry.seq = next_seq_++;
      entry.chain = HashEntry(entry, chain_tail_);
      chain_tail_ = entry.chain;
      const Bytes bytes = EncodeEntry(entry);
      encoded.PutRaw(bytes);
    }
    Status appended;
    {
      // log_mu_ serialises the store-facing log against QueryDurable's
      // scan; it is never taken while holding mu_, so producers are
      // never blocked on device IO.
      std::lock_guard<metrics::OrderedMutex> log_lock(log_mu_);
      appended = log_->AppendBatch(
          encoded.buffer(), static_cast<std::uint32_t>(batch.size()),
          chain_tail_);
    }
    {
      std::unique_lock<metrics::OrderedMutex> lock(mu_);
      written_total_ += batch.size();
      if (appended.ok()) {
        durable_entries_.fetch_add(batch.size(), std::memory_order_relaxed);
        RGPD_METRIC_COUNT_N("sentinel.audit.persisted", batch.size());
      } else {
        // The entries are lost but the loss is accounted and loud; the
        // chain state stays consistent with what IS on the store only if
        // nothing landed — conservatively keep the advanced chain so
        // later appends cannot silently reuse sequence numbers.
        lost_entries_.fetch_add(batch.size(), std::memory_order_relaxed);
        RGPD_METRIC_COUNT_N("sentinel.audit.write_errors", batch.size());
        if (last_error_.ok()) last_error_ = appended;
        RGPD_LOG(kError, "audit_pipeline")
            << "batch append failed: " << appended.ToString();
      }
      drained_.notify_all();
    }
  }
}

Status DurableAuditPipeline::Flush() {
  std::unique_lock<metrics::OrderedMutex> lock(mu_);
  drained_.wait(lock, [this] {
    return (queue_.empty() && written_total_ == enqueued_total_) || stop_;
  });
  return std::exchange(last_error_, Status::Ok());
}

void DurableAuditPipeline::Stop() {
  {
    std::unique_lock<metrics::OrderedMutex> lock(mu_);
    if (joined_) return;
    // Let the writer drain what is queued, then exit. A test-paused
    // writer is woken: shutdown overrides the pause.
    paused_ = false;
    not_empty_.notify_all();
    drained_.wait(lock, [this] {
      return queue_.empty() && written_total_ == enqueued_total_;
    });
    stop_ = true;
    joined_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
}

void DurableAuditPipeline::SetWriterPausedForTest(bool paused) {
  std::unique_lock<metrics::OrderedMutex> lock(mu_);
  paused_ = paused;
  not_empty_.notify_all();
}

Result<std::vector<AuditEntry>> DurableAuditPipeline::QueryDurable(
    const std::function<bool(const AuditEntry&)>& predicate) {
  RGPD_RETURN_IF_ERROR(Flush());
  std::vector<AuditEntry> all;
  std::uint64_t next_seq = 0;
  crypto::Sha256Digest prev{};
  {
    std::lock_guard<metrics::OrderedMutex> log_lock(log_mu_);
    RGPD_RETURN_IF_ERROR(log_->ScanRaw([&](ByteSpan raw) {
      return DecodeVerifiedStream(raw, &next_seq, &prev, &all);
    }));
  }
  std::vector<AuditEntry> out;
  for (AuditEntry& e : all) {
    if (predicate(e)) out.push_back(std::move(e));
  }
  return out;
}

Result<std::vector<AuditEntry>> DurableAuditPipeline::LoadEntries(
    inodefs::InodeStore* store, inodefs::InodeId manifest_inode) {
  RGPD_ASSIGN_OR_RETURN(
      std::unique_ptr<auditlog::SegmentedLog> log,
      auditlog::SegmentedLog::Mount(store, manifest_inode, {}));
  std::vector<AuditEntry> all;
  std::uint64_t next_seq = 0;
  crypto::Sha256Digest prev{};
  RGPD_RETURN_IF_ERROR(log->ScanRaw([&](ByteSpan raw) {
    return DecodeVerifiedStream(raw, &next_seq, &prev, &all);
  }));
  return all;
}

}  // namespace rgpdos::sentinel
