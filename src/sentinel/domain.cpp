#include "sentinel/domain.hpp"

namespace rgpdos::sentinel {

std::string_view DomainName(Domain domain) {
  switch (domain) {
    case Domain::kOutside: return "outside";
    case Domain::kApplication: return "application";
    case Domain::kGeneralKernel: return "general_kernel";
    case Domain::kIoKernel: return "io_kernel";
    case Domain::kProcessingStore: return "processing_store";
    case Domain::kDed: return "ded";
    case Domain::kDbfs: return "dbfs";
    case Domain::kSysadmin: return "sysadmin";
    case Domain::kAuthority: return "authority";
  }
  return "?";
}

std::string_view OperationName(Operation op) {
  switch (op) {
    case Operation::kRead: return "read";
    case Operation::kReadSchema: return "read_schema";
    case Operation::kWrite: return "write";
    case Operation::kCreate: return "create";
    case Operation::kDelete: return "delete";
    case Operation::kInvoke: return "invoke";
    case Operation::kRegister: return "register";
    case Operation::kApprove: return "approve";
    case Operation::kExport: return "export";
    case Operation::kErase: return "erase";
  }
  return "?";
}

}  // namespace rgpdos::sentinel
