// Audit sink: an append-only record of every enforcement decision,
// queryable by outcome and by domain. Feeds the regulator-audit example
// and the enforcement-invariant tests (a denied access must leave an
// audit record, E4).
//
// Two tiers (DESIGN.md §14):
//
//   * The in-memory ring here — a bounded hot window for fast queries
//     and tests.
//   * An optional DurableAuditPipeline (audit_pipeline.hpp) attached via
//     AttachPipeline(): every Record is ALSO handed to the pipeline,
//     which hash-chains and persists it to sealed segments on the inode
//     store. With a pipeline attached, ring evictions are bookkeeping
//     (the entry lives on durably) and are counted in evicted_count(),
//     NOT dropped_count(); dropped_count() then means real evidence
//     loss (pipeline backpressure deadline or store write error).
//
// Thread-safety: Record/Query/Clear serialise on an internal mutex at
// rank kSentinel — below every core lock, above the filesystem locks —
// so any layer of the PD path may audit while holding its own locks.
// The pipeline handoff happens BEFORE mu_ is taken (a producer blocked
// on backpressure must not hold the sink lock). The tallies are atomic
// so the hot-path accessors stay lock-free. entries() returns a
// reference to the underlying ring and is only safe at quiescence;
// concurrent readers must go through Query(), which snapshots under the
// lock and filters OUTSIDE it (a predicate is caller code and may take
// caller locks — running it under mu_ invites rank inversions).
//
// Capacity semantics: the ring keeps at most capacity() entries.
//   * capacity() == kUnbounded  — never evict (explicit opt-in only).
//   * capacity() == 0           — retain nothing: every entry is
//     rejected from the ring (and counted dropped when no pipeline can
//     persist it). 0 is no longer a silent alias for unbounded; a
//     zero-capacity evidence buffer must refuse, not hoard.
//   * otherwise                 — evict oldest when full.
// The allowed/denied/dropped tallies are LIFETIME counters: they keep
// counting across Clear(), which empties only the ring. Totals stay
// exact even after drops and clears.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "crypto/sha256.hpp"
#include "metrics/lock.hpp"
#include "sentinel/domain.hpp"

namespace rgpdos::sentinel {

struct AuditEntry {
  TimeMicros at = 0;
  AccessRequest request;
  bool allowed = false;
  std::string rule;  ///< which rule decided ("default-deny", "allow ...")
  // Assigned by the durable pipeline's writer thread; zero until then.
  // Kept at the end so aggregate initialisers of the first four fields
  // stay valid.
  std::uint64_t seq = 0;
  crypto::Sha256Digest chain{};  ///< SHA-256 over entry + previous chain
};

class DurableAuditPipeline;

class AuditSink {
 public:
  /// Default ring bound: plenty for a test run or an audit window,
  /// bounded under a retention daemon that audits every expiry.
  static constexpr std::size_t kDefaultCapacity = 65536;
  /// Explicit "never evict" sentinel. Capacity 0 means the opposite:
  /// retain nothing.
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  explicit AuditSink(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void Record(AuditEntry entry);

  /// Attach (or detach, with nullptr) the durable backend. The pipeline
  /// must outlive the attachment; detach before destroying it.
  void AttachPipeline(DurableAuditPipeline* pipeline) {
    pipeline_.store(pipeline, std::memory_order_release);
  }
  [[nodiscard]] DurableAuditPipeline* pipeline() const {
    return pipeline_.load(std::memory_order_acquire);
  }

  /// Quiescent-time view of the raw ring (tests, post-run inspection),
  /// oldest entry first. Not safe while other threads Record; use
  /// Query() instead.
  [[nodiscard]] const std::deque<AuditEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t allowed_count() const {
    return allowed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t denied_count() const {
    return denied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t entry_count() const;
  /// Entries LOST — evicted with no durable pipeline to catch them,
  /// rejected by a zero-capacity ring, or refused by the pipeline
  /// (backpressure deadline). Lifetime counter; survives Clear().
  [[nodiscard]] std::uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Entries evicted from the ring while a pipeline held them durably —
  /// bookkeeping, not evidence loss. Lifetime counter.
  [[nodiscard]] std::uint64_t evicted_count() const {
    return evicted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Re-bound the ring (boot-time knob; trims oldest entries if the new
  /// capacity is smaller). kUnbounded = never evict; 0 = retain nothing.
  void SetCapacity(std::size_t capacity);

  /// Entries matching a predicate (e.g. all denials against DBFS).
  /// Snapshots the ring under the lock, then filters with the lock
  /// RELEASED — the predicate may safely take its own locks.
  [[nodiscard]] std::vector<AuditEntry> Query(
      const std::function<bool(const AuditEntry&)>& predicate) const;

  /// Empty the ring. The allowed/denied/dropped/evicted tallies are
  /// lifetime counters and are NOT reset — evidence totals must survive
  /// an operator clearing the hot window.
  void Clear();

 private:
  /// Drop oldest entries until the ring fits. Caller holds mu_.
  void TrimLocked(bool durably_held);

  mutable metrics::OrderedMutex mu_{metrics::LockRank::kSentinel,
                                    "sentinel.audit"};
  std::deque<AuditEntry> entries_;
  std::size_t capacity_;
  std::atomic<DurableAuditPipeline*> pipeline_{nullptr};
  std::atomic<std::uint64_t> allowed_{0};
  std::atomic<std::uint64_t> denied_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace rgpdos::sentinel
