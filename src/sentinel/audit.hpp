// Audit sink: an append-only record of every enforcement decision,
// queryable by outcome and by domain. Feeds the regulator-audit example
// and the enforcement-invariant tests (a denied access must leave an
// audit record, E4).
//
// Thread-safety: Record/Query/Clear serialise on an internal mutex at
// rank kSentinel — below every core lock, above the filesystem locks —
// so any layer of the PD path may audit while holding its own locks.
// The allowed/denied tallies are additionally atomic so the hot-path
// accessors stay lock-free. entries() returns a reference to the
// underlying log and is only safe at quiescence; concurrent readers
// must go through Query(), which copies under the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "metrics/lock.hpp"
#include "sentinel/domain.hpp"

namespace rgpdos::sentinel {

struct AuditEntry {
  TimeMicros at = 0;
  AccessRequest request;
  bool allowed = false;
  std::string rule;  ///< which rule decided ("default-deny", "allow ...")
};

class AuditSink {
 public:
  void Record(AuditEntry entry);

  /// Quiescent-time view of the raw log (tests, post-run inspection).
  /// Not safe while other threads Record; use Query() instead.
  [[nodiscard]] const std::vector<AuditEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t allowed_count() const {
    return allowed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t denied_count() const {
    return denied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t entry_count() const;

  /// Entries matching a predicate (e.g. all denials against DBFS),
  /// copied out under the lock.
  [[nodiscard]] std::vector<AuditEntry> Query(
      const std::function<bool(const AuditEntry&)>& predicate) const;

  void Clear();

 private:
  mutable metrics::OrderedMutex mu_{metrics::LockRank::kSentinel,
                                    "sentinel.audit"};
  std::vector<AuditEntry> entries_;
  std::atomic<std::uint64_t> allowed_{0};
  std::atomic<std::uint64_t> denied_{0};
};

}  // namespace rgpdos::sentinel
