// Audit sink: an append-only record of every enforcement decision,
// queryable by outcome and by domain. Feeds the regulator-audit example
// and the enforcement-invariant tests (a denied access must leave an
// audit record, E4).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "sentinel/domain.hpp"

namespace rgpdos::sentinel {

struct AuditEntry {
  TimeMicros at = 0;
  AccessRequest request;
  bool allowed = false;
  std::string rule;  ///< which rule decided ("default-deny", "allow ...")
};

class AuditSink {
 public:
  void Record(AuditEntry entry);

  [[nodiscard]] const std::vector<AuditEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t allowed_count() const { return allowed_; }
  [[nodiscard]] std::uint64_t denied_count() const { return denied_; }

  /// Entries matching a predicate (e.g. all denials against DBFS).
  [[nodiscard]] std::vector<AuditEntry> Query(
      const std::function<bool(const AuditEntry&)>& predicate) const;

  void Clear();

 private:
  std::vector<AuditEntry> entries_;
  std::uint64_t allowed_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace rgpdos::sentinel
