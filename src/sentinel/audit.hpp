// Audit sink: an append-only record of every enforcement decision,
// queryable by outcome and by domain. Feeds the regulator-audit example
// and the enforcement-invariant tests (a denied access must leave an
// audit record, E4).
//
// Thread-safety: Record/Query/Clear serialise on an internal mutex at
// rank kSentinel — below every core lock, above the filesystem locks —
// so any layer of the PD path may audit while holding its own locks.
// The allowed/denied tallies are additionally atomic so the hot-path
// accessors stay lock-free. entries() returns a reference to the
// underlying log and is only safe at quiescence; concurrent readers
// must go through Query(), which copies under the lock.
//
// Memory bound: the sink keeps at most `capacity()` entries (a ring —
// the retention sweeper audits every expiry, so an unbounded vector
// would grow forever under a long-running daemon). When full, the
// OLDEST entry is dropped and dropped_count() is bumped; the
// allowed/denied tallies keep counting every Record, so the totals stay
// exact even after drops. capacity 0 = unbounded (historical
// behaviour).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "metrics/lock.hpp"
#include "sentinel/domain.hpp"

namespace rgpdos::sentinel {

struct AuditEntry {
  TimeMicros at = 0;
  AccessRequest request;
  bool allowed = false;
  std::string rule;  ///< which rule decided ("default-deny", "allow ...")
};

class AuditSink {
 public:
  /// Default ring bound: plenty for a test run or an audit window,
  /// bounded under a retention daemon that audits every expiry.
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit AuditSink(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void Record(AuditEntry entry);

  /// Quiescent-time view of the raw log (tests, post-run inspection),
  /// oldest entry first. Not safe while other threads Record; use
  /// Query() instead.
  [[nodiscard]] const std::deque<AuditEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t allowed_count() const {
    return allowed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t denied_count() const {
    return denied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t entry_count() const;
  /// Entries evicted from the ring to honour the capacity bound.
  [[nodiscard]] std::uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Re-bound the ring (boot-time knob; trims oldest entries if the new
  /// capacity is smaller). 0 = unbounded.
  void SetCapacity(std::size_t capacity);

  /// Entries matching a predicate (e.g. all denials against DBFS),
  /// copied out under the lock.
  [[nodiscard]] std::vector<AuditEntry> Query(
      const std::function<bool(const AuditEntry&)>& predicate) const;

  void Clear();

 private:
  /// Drop oldest entries until the ring fits. Caller holds mu_.
  void TrimLocked();

  mutable metrics::OrderedMutex mu_{metrics::LockRank::kSentinel,
                                    "sentinel.audit"};
  std::deque<AuditEntry> entries_;
  std::size_t capacity_;
  std::atomic<std::uint64_t> allowed_{0};
  std::atomic<std::uint64_t> denied_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace rgpdos::sentinel
