// Sealed audit-log segment format (DESIGN.md §14).
//
// A sealed segment is the immutable unit of the durable audit pipeline:
// a fixed-size run of encoded log entries, optionally compressed, with
// a CRC'd header binding the payload to its place in the SHA-256 hash
// chain. Tamper evidence is layered:
//
//   * header_crc / payload_crc catch accidental corruption (torn write,
//     bit rot) without touching the payload codec;
//   * chain_prev / chain_tail bind the segment into the entry hash
//     chain: a re-compressed, re-CRC'd forgery still has to re-hash
//     every later entry, which LoadFromStore-style verification detects;
//   * segment_seq / first_seq make reordering and whole-segment removal
//     detectable from the manifest walk alone.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/sha256.hpp"

namespace rgpdos::auditlog {

inline constexpr std::uint32_t kSegmentMagic = 0x4C534752;  // "RGSL"
inline constexpr std::uint32_t kSegmentVersion = 1;

enum class SegmentCodec : std::uint8_t {
  kRaw = 0,  ///< payload stored verbatim
  kLz = 1,   ///< payload stored LzCompress'd
};

/// Header of a sealed segment (the payload follows it in the inode).
struct SegmentInfo {
  std::uint64_t segment_seq = 0;  ///< 0-based position in the log
  std::uint64_t first_seq = 0;    ///< seq of the first entry inside
  std::uint32_t entry_count = 0;
  crypto::Sha256Digest chain_prev{};  ///< chain tail before this segment
  crypto::Sha256Digest chain_tail{};  ///< chain digest of the last entry
  std::uint64_t raw_size = 0;         ///< uncompressed payload bytes
};

/// Encode header + payload (compressing when `compress` and the LZ
/// stream is actually smaller).
Bytes EncodeSealedSegment(const SegmentInfo& info, ByteSpan raw_payload,
                          bool compress);

/// Decode + verify a sealed segment: header CRC, payload CRC, magic and
/// version, then decompress. Any mismatch is kCorruption.
Status DecodeSealedSegment(ByteSpan stored, SegmentInfo* info,
                           Bytes* raw_payload);

}  // namespace rgpdos::auditlog
