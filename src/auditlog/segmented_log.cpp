#include "auditlog/segmented_log.hpp"

#include <algorithm>
#include <string>

#include "common/crc32.hpp"
#include "crypto/hmac.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::auditlog {

namespace {
constexpr std::uint32_t kManifestMagic = 0x4D534752;  // "RGSM"
constexpr std::uint32_t kManifestVersion = 1;
}  // namespace

bool SegmentedLog::LooksLikeManifest(ByteSpan bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic = 0;
  for (std::size_t i = 0; i < sizeof(magic); ++i) {
    magic |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  return magic == kManifestMagic;
}

Bytes SegmentedLog::EncodeManifest() const {
  ByteWriter w(64 + sealed_.size() * 56);
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU32(active_inode_);
  w.PutU64(sealed_.size());
  for (const SealedSegment& seg : sealed_) {
    w.PutU32(seg.inode);
    w.PutU64(seg.first_seq);
    w.PutU32(seg.entry_count);
    w.PutU64(seg.raw_size);
    w.PutRaw(ByteSpan(seg.chain_tail.data(), seg.chain_tail.size()));
  }
  w.PutU32(Crc32(w.buffer()));
  return w.Take();
}

Result<std::unique_ptr<SegmentedLog>> SegmentedLog::Create(
    inodefs::InodeStore* store, inodefs::InodeId manifest_inode,
    const SegmentedLogOptions& options) {
  std::unique_ptr<SegmentedLog> log(
      new SegmentedLog(store, manifest_inode, options));
  RGPD_ASSIGN_OR_RETURN(log->active_inode_,
                        store->AllocInode(inodefs::InodeKind::kFile));
  RGPD_RETURN_IF_ERROR(
      store->WriteAll(manifest_inode, log->EncodeManifest()));
  return log;
}

Result<std::unique_ptr<SegmentedLog>> SegmentedLog::Mount(
    inodefs::InodeStore* store, inodefs::InodeId manifest_inode,
    const SegmentedLogOptions& options) {
  std::unique_ptr<SegmentedLog> log(
      new SegmentedLog(store, manifest_inode, options));
  RGPD_ASSIGN_OR_RETURN(Bytes raw, store->ReadAll(manifest_inode));
  if (raw.size() < 2 * sizeof(std::uint32_t)) {
    return Corruption("segmented log: manifest too short");
  }
  const ByteSpan body(raw.data(), raw.size() - sizeof(std::uint32_t));
  ByteReader crc_reader(
      ByteSpan(raw.data() + body.size(), sizeof(std::uint32_t)));
  RGPD_ASSIGN_OR_RETURN(std::uint32_t stored_crc, crc_reader.GetU32());
  if (Crc32(body) != stored_crc) {
    return Corruption("segmented log: manifest CRC mismatch");
  }
  ByteReader r(body);
  RGPD_ASSIGN_OR_RETURN(std::uint32_t magic, r.GetU32());
  RGPD_ASSIGN_OR_RETURN(std::uint32_t version, r.GetU32());
  if (magic != kManifestMagic || version != kManifestVersion) {
    return Corruption("segmented log: bad manifest magic/version");
  }
  RGPD_ASSIGN_OR_RETURN(log->active_inode_, r.GetU32());
  RGPD_ASSIGN_OR_RETURN(std::uint64_t sealed_count, r.GetU64());
  std::uint64_t next_seq = 0;
  crypto::Sha256Digest prev_tail{};
  for (std::uint64_t i = 0; i < sealed_count; ++i) {
    SealedSegment seg;
    RGPD_ASSIGN_OR_RETURN(seg.inode, r.GetU32());
    RGPD_ASSIGN_OR_RETURN(seg.first_seq, r.GetU64());
    RGPD_ASSIGN_OR_RETURN(seg.entry_count, r.GetU32());
    RGPD_ASSIGN_OR_RETURN(seg.raw_size, r.GetU64());
    RGPD_ASSIGN_OR_RETURN(Bytes tail, r.GetRaw(crypto::kSha256DigestSize));
    std::copy(tail.begin(), tail.end(), seg.chain_tail.begin());

    // Verify the sealed segment itself: CRCs, ordering, chain linkage.
    RGPD_ASSIGN_OR_RETURN(Bytes stored, store->ReadAll(seg.inode));
    SegmentInfo info;
    Bytes payload;
    RGPD_RETURN_IF_ERROR(DecodeSealedSegment(stored, &info, &payload));
    if (info.segment_seq != i) {
      return Corruption("segmented log: segment " + std::to_string(i) +
                        " out of order (header says " +
                        std::to_string(info.segment_seq) + ")");
    }
    if (info.first_seq != next_seq || info.first_seq != seg.first_seq ||
        info.entry_count != seg.entry_count) {
      return Corruption("segmented log: segment " + std::to_string(i) +
                        " sequence discontinuity");
    }
    if (!crypto::DigestEqual(info.chain_prev, prev_tail) ||
        !crypto::DigestEqual(info.chain_tail, seg.chain_tail)) {
      return Corruption("segmented log: segment " + std::to_string(i) +
                        " breaks the hash chain linkage");
    }
    if (info.raw_size != seg.raw_size) {
      return Corruption("segmented log: segment " + std::to_string(i) +
                        " size mismatch vs manifest");
    }
    next_seq += info.entry_count;
    prev_tail = info.chain_tail;
    log->sealed_.push_back(std::move(seg));
  }
  if (!r.exhausted()) {
    return Corruption("segmented log: trailing bytes in manifest");
  }
  RGPD_ASSIGN_OR_RETURN(log->active_buf_, store->ReadAll(log->active_inode_));
  log->active_chain_prev_ = prev_tail;
  // Until the owner decodes the active tail and calls AdoptActiveState,
  // assume an empty tail.
  log->chain_tail_ = prev_tail;
  log->active_entries_ = 0;
  return log;
}

void SegmentedLog::AdoptActiveState(std::uint32_t active_entries,
                                    const crypto::Sha256Digest& chain_tail) {
  active_entries_ = active_entries;
  chain_tail_ = chain_tail;
}

std::uint64_t SegmentedLog::sealed_entry_total() const {
  std::uint64_t total = 0;
  for (const SealedSegment& seg : sealed_) total += seg.entry_count;
  return total;
}

Status SegmentedLog::AppendBatch(ByteSpan encoded, std::uint32_t entry_count,
                                 const crypto::Sha256Digest& chain_tail) {
  if (entry_count == 0 || encoded.empty()) return Status::Ok();
  if (options_.segment_bytes != 0 &&
      active_buf_.size() >= options_.segment_bytes && active_entries_ > 0) {
    RGPD_RETURN_IF_ERROR(SealActive());
  }
  RGPD_RETURN_IF_ERROR(store_->Append(active_inode_, encoded));
  active_buf_.insert(active_buf_.end(), encoded.begin(), encoded.end());
  active_entries_ += entry_count;
  chain_tail_ = chain_tail;
  return Status::Ok();
}

Status SegmentedLog::Seal() {
  if (active_entries_ == 0) return Status::Ok();
  return SealActive();
}

Status SegmentedLog::SealActive() {
  SegmentInfo info;
  info.segment_seq = sealed_.size();
  info.first_seq = sealed_entry_total();
  info.entry_count = active_entries_;
  info.chain_prev = active_chain_prev_;
  info.chain_tail = chain_tail_;
  info.raw_size = active_buf_.size();
  const Bytes stored = EncodeSealedSegment(info, active_buf_,
                                           options_.compress);

  // Seal atomically: the sealed image, the manifest update and the
  // active-tail truncation commit as ONE journal transaction, so a crash
  // mid-rotation replays to either the old state (tail still active) or
  // the new one (segment sealed, tail empty) — never both or neither.
  inodefs::InodeStore::GroupCommitScope scope(*store_);
  RGPD_ASSIGN_OR_RETURN(const inodefs::InodeId sealed_inode,
                        store_->AllocInode(inodefs::InodeKind::kFile));
  RGPD_RETURN_IF_ERROR(store_->WriteAll(sealed_inode, stored));
  SealedSegment seg;
  seg.inode = sealed_inode;
  seg.first_seq = info.first_seq;
  seg.entry_count = info.entry_count;
  seg.raw_size = info.raw_size;
  seg.chain_tail = info.chain_tail;
  sealed_.push_back(seg);
  RGPD_RETURN_IF_ERROR(store_->WriteAll(manifest_inode_, EncodeManifest()));
  RGPD_RETURN_IF_ERROR(
      store_->Truncate(active_inode_, 0, /*scrub=*/false));
  const Status committed = scope.Finish();
  if (!committed.ok()) {
    sealed_.pop_back();
    return committed;
  }
  RGPD_METRIC_COUNT("auditlog.segments.sealed");
  RGPD_METRIC_COUNT_N("auditlog.segments.raw_bytes", info.raw_size);
  RGPD_METRIC_COUNT_N("auditlog.segments.stored_bytes", stored.size());
  active_buf_.clear();
  active_entries_ = 0;
  active_chain_prev_ = info.chain_tail;
  return Status::Ok();
}

Result<Bytes> SegmentedLog::RawStream() const {
  Bytes out;
  RGPD_RETURN_IF_ERROR(ScanRaw([&out](ByteSpan raw) {
    out.insert(out.end(), raw.begin(), raw.end());
    return Status::Ok();
  }));
  return out;
}

Status SegmentedLog::ScanRaw(
    const std::function<Status(ByteSpan raw)>& fn) const {
  for (const SealedSegment& seg : sealed_) {
    RGPD_ASSIGN_OR_RETURN(Bytes stored, store_->ReadAll(seg.inode));
    SegmentInfo info;
    Bytes payload;
    RGPD_RETURN_IF_ERROR(DecodeSealedSegment(stored, &info, &payload));
    RGPD_RETURN_IF_ERROR(fn(payload));
  }
  return fn(active_buf_);
}

}  // namespace rgpdos::auditlog
