#include "auditlog/segment.hpp"

#include <algorithm>
#include <string>

#include "common/compress.hpp"
#include "common/crc32.hpp"

namespace rgpdos::auditlog {

Bytes EncodeSealedSegment(const SegmentInfo& info, ByteSpan raw_payload,
                          bool compress) {
  SegmentCodec codec = SegmentCodec::kRaw;
  Bytes compressed;
  ByteSpan payload = raw_payload;
  if (compress) {
    compressed = LzCompress(raw_payload);
    if (compressed.size() < raw_payload.size()) {
      codec = SegmentCodec::kLz;
      payload = compressed;
    }
  }
  ByteWriter w(payload.size() + 128);
  w.PutU32(kSegmentMagic);
  w.PutU32(kSegmentVersion);
  w.PutU64(info.segment_seq);
  w.PutU64(info.first_seq);
  w.PutU32(info.entry_count);
  w.PutU8(static_cast<std::uint8_t>(codec));
  w.PutRaw(ByteSpan(info.chain_prev.data(), info.chain_prev.size()));
  w.PutRaw(ByteSpan(info.chain_tail.data(), info.chain_tail.size()));
  w.PutU64(raw_payload.size());
  w.PutU64(payload.size());
  w.PutU32(Crc32(payload));
  w.PutU32(Crc32(w.buffer()));  // header CRC covers everything above
  w.PutRaw(payload);
  return w.Take();
}

Status DecodeSealedSegment(ByteSpan stored, SegmentInfo* info,
                           Bytes* raw_payload) {
  ByteReader r(stored);
  RGPD_ASSIGN_OR_RETURN(std::uint32_t magic, r.GetU32());
  RGPD_ASSIGN_OR_RETURN(std::uint32_t version, r.GetU32());
  if (magic != kSegmentMagic) {
    return Corruption("audit segment: bad magic");
  }
  if (version != kSegmentVersion) {
    return Corruption("audit segment: unknown version " +
                      std::to_string(version));
  }
  SegmentInfo decoded;
  RGPD_ASSIGN_OR_RETURN(decoded.segment_seq, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(decoded.first_seq, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(decoded.entry_count, r.GetU32());
  RGPD_ASSIGN_OR_RETURN(std::uint8_t codec_byte, r.GetU8());
  if (codec_byte > static_cast<std::uint8_t>(SegmentCodec::kLz)) {
    return Corruption("audit segment: unknown codec");
  }
  RGPD_ASSIGN_OR_RETURN(Bytes prev, r.GetRaw(crypto::kSha256DigestSize));
  std::copy(prev.begin(), prev.end(), decoded.chain_prev.begin());
  RGPD_ASSIGN_OR_RETURN(Bytes tail, r.GetRaw(crypto::kSha256DigestSize));
  std::copy(tail.begin(), tail.end(), decoded.chain_tail.begin());
  RGPD_ASSIGN_OR_RETURN(decoded.raw_size, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(std::uint64_t stored_size, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(std::uint32_t payload_crc, r.GetU32());
  const std::size_t header_end = r.position();
  RGPD_ASSIGN_OR_RETURN(std::uint32_t header_crc, r.GetU32());
  if (Crc32(stored.subspan(0, header_end)) != header_crc) {
    return Corruption("audit segment: header CRC mismatch");
  }
  if (stored_size != r.remaining()) {
    return Corruption("audit segment: payload size mismatch");
  }
  RGPD_ASSIGN_OR_RETURN(Bytes payload, r.GetRaw(stored_size));
  if (Crc32(payload) != payload_crc) {
    return Corruption("audit segment: payload CRC mismatch");
  }
  if (static_cast<SegmentCodec>(codec_byte) == SegmentCodec::kLz) {
    RGPD_ASSIGN_OR_RETURN(payload, LzDecompress(payload, decoded.raw_size));
  } else if (payload.size() != decoded.raw_size) {
    return Corruption("audit segment: raw payload size mismatch");
  }
  *info = decoded;
  *raw_payload = std::move(payload);
  return Status::Ok();
}

}  // namespace rgpdos::auditlog
