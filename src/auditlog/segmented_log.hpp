// SegmentedLog — durable substrate of the audit/processing-log pipeline
// (DESIGN.md §14).
//
// An append-only log stored on an inodefs::InodeStore as:
//
//   manifest inode   CRC'd index: active inode id + one row per sealed
//                    segment (inode, first_seq, entry_count, raw size,
//                    chain tail). Rewritten atomically on every seal.
//   active inode     raw (uncompressed) encoded entries, appended in
//                    batches; each batch append is one journaled
//                    transaction, so a crash leaves a clean batch prefix.
//   sealed inodes    one per sealed segment (segment.hpp format:
//                    compressed, CRC'd, chain-bound).
//
// When the active tail reaches `segment_bytes` it is sealed: compressed
// into a fresh inode, the manifest rewritten, and the active inode
// truncated — all inside one journal group commit, so a crash during
// rotation can never duplicate or lose entries.
//
// The payload is opaque here: callers append pre-encoded entry batches
// and tell the log the entry count and the SHA-256 chain tail after the
// batch; chain hashing/verification of individual entries stays with
// the owner (ProcessingLog, DurableAuditPipeline). Mount verifies
// everything below the entry codec: manifest CRC, per-segment header and
// payload CRCs, segment ordering, first_seq continuity and chain_prev /
// chain_tail linkage across segments.
//
// Thread-safety: externally synchronised. Both owners already serialise
// their durable appends (ProcessingLog under its kCoreLog mutex, the
// audit pipeline on its single writer thread), so the log adds no lock
// of its own.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "auditlog/segment.hpp"
#include "inodefs/inode_store.hpp"

namespace rgpdos::auditlog {

struct SegmentedLogOptions {
  /// Seal threshold on the raw (uncompressed) active tail, in bytes.
  std::uint64_t segment_bytes = 256 * 1024;
  /// Compress sealed segments (raw is kept when LZ doesn't shrink).
  bool compress = true;
};

/// A sealed segment as indexed by the manifest.
struct SealedSegment {
  inodefs::InodeId inode = inodefs::kInvalidInode;
  std::uint64_t first_seq = 0;
  std::uint32_t entry_count = 0;
  std::uint64_t raw_size = 0;
  crypto::Sha256Digest chain_tail{};
};

class SegmentedLog {
 public:
  /// Initialise a fresh log: allocates the active inode and writes an
  /// empty manifest into `manifest_inode` (caller-allocated).
  static Result<std::unique_ptr<SegmentedLog>> Create(
      inodefs::InodeStore* store, inodefs::InodeId manifest_inode,
      const SegmentedLogOptions& options);

  /// Mount an existing log: decodes the manifest (CRC-checked), reads
  /// and verifies every sealed segment (header/payload CRCs, ordering,
  /// seq continuity, cross-segment chain linkage) and loads the active
  /// tail. Entry-level chain verification is the caller's job — decode
  /// RawStream() and call AdoptActiveState with what you found.
  static Result<std::unique_ptr<SegmentedLog>> Mount(
      inodefs::InodeStore* store, inodefs::InodeId manifest_inode,
      const SegmentedLogOptions& options);

  /// True if `bytes` (content of a manifest inode) starts with the
  /// manifest magic — used to tell a segmented log from a legacy flat
  /// one when attaching to an existing image.
  [[nodiscard]] static bool LooksLikeManifest(ByteSpan bytes);

  /// Append one batch of pre-encoded entries to the active tail (one
  /// journaled transaction), sealing + rotating first if the tail is
  /// full. `chain_tail` is the entry hash-chain digest AFTER the batch.
  Status AppendBatch(ByteSpan encoded, std::uint32_t entry_count,
                     const crypto::Sha256Digest& chain_tail);

  /// Force-seal the current active tail (tests, clean shutdown).
  Status Seal();

  /// After Mount: callers that decoded the active tail report how many
  /// entries it held and the resulting chain tail, so later appends and
  /// seals continue the chain correctly.
  void AdoptActiveState(std::uint32_t active_entries,
                        const crypto::Sha256Digest& chain_tail);

  /// The whole raw entry stream in order: every sealed segment's
  /// (decompressed, CRC-verified) payload, then the active tail.
  [[nodiscard]] Result<Bytes> RawStream() const;

  /// Stream per-chunk instead of concatenating: `fn` is called once per
  /// sealed segment payload and once for the (possibly empty) active
  /// tail. Returning an error stops the scan.
  Status ScanRaw(const std::function<Status(ByteSpan raw)>& fn) const;

  [[nodiscard]] const std::vector<SealedSegment>& sealed() const {
    return sealed_;
  }
  [[nodiscard]] std::uint64_t sealed_entry_total() const;
  [[nodiscard]] std::uint64_t total_entries() const {
    return sealed_entry_total() + active_entries_;
  }
  [[nodiscard]] const crypto::Sha256Digest& chain_tail() const {
    return chain_tail_;
  }
  [[nodiscard]] inodefs::InodeId active_inode() const { return active_inode_; }
  [[nodiscard]] std::uint64_t active_raw_bytes() const {
    return active_buf_.size();
  }
  /// Raw encoded content of the active tail (decode + chain-verify it
  /// after Mount, then AdoptActiveState).
  [[nodiscard]] const Bytes& active_raw() const { return active_buf_; }

 private:
  SegmentedLog(inodefs::InodeStore* store, inodefs::InodeId manifest_inode,
               const SegmentedLogOptions& options)
      : store_(store), manifest_inode_(manifest_inode), options_(options) {}

  /// Compress + seal the active tail into a fresh inode, rewrite the
  /// manifest, truncate the active inode — one journal group commit.
  Status SealActive();
  Bytes EncodeManifest() const;

  inodefs::InodeStore* store_;  // borrowed
  inodefs::InodeId manifest_inode_;
  SegmentedLogOptions options_;
  inodefs::InodeId active_inode_ = inodefs::kInvalidInode;
  std::vector<SealedSegment> sealed_;
  /// In-memory mirror of the active inode's content (bounded by
  /// segment_bytes), so sealing never re-reads the device.
  Bytes active_buf_;
  std::uint32_t active_entries_ = 0;
  /// Chain tail before the active tail's first entry (== last sealed
  /// segment's tail, or zero at the log head).
  crypto::Sha256Digest active_chain_prev_{};
  /// Chain tail after the newest appended entry.
  crypto::Sha256Digest chain_tail_{};
};

}  // namespace rgpdos::auditlog
