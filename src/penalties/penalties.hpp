// GDPR penalty statistics (paper Fig. 1, built from datalegaldrive.com's
// public sanction map). The bundled dataset approximates the public
// record of notable GDPR fines 2018-2022; amounts are in euros as widely
// reported at decision time. It is a reproduction dataset, not legal
// reference material.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rgpdos::penalties {

struct Fine {
  int year = 0;
  std::string country;
  std::string sector;
  std::string entity;
  double amount_eur = 0;
};

/// The bundled dataset (sorted by year, then amount descending).
const std::vector<Fine>& Dataset();

/// Fig 1 left: total penalty amount per year.
std::map<int, double> TotalsByYear();

/// Fig 1 right: the `n` most sanctioned business sectors by cumulative
/// amount, descending.
std::vector<std::pair<std::string, double>> TopSectorsByAmount(
    std::size_t n);

/// Same, ranked by number of sanctions.
std::vector<std::pair<std::string, std::size_t>> TopSectorsByCount(
    std::size_t n);

}  // namespace rgpdos::penalties
