#include "penalties/penalties.hpp"

#include <algorithm>

namespace rgpdos::penalties {

const std::vector<Fine>& Dataset() {
  // Notable public GDPR fines, 2018-2022 (amounts as reported at
  // decision time; the paper's Fig 1 peaks at ~1.2 B EUR for 2021).
  static const std::vector<Fine> kDataset = {
      // 2018 — the regulation's first (partial) year.
      {2018, "PT", "health", "Barreiro-Montijo Hospital", 400'000},
      {2018, "DE", "internet", "Knuddels", 20'000},
      {2018, "AT", "retail", "Austrian betting shop (CCTV)", 5'280},
      // 2019.
      {2019, "FR", "internet", "Google", 50'000'000},
      {2019, "AT", "postal", "Austrian Post", 18'000'000},
      {2019, "DE", "telecom", "1&1 Telecom", 9'550'000},
      {2019, "BG", "finance", "National Revenue Agency", 2'600'000},
      {2019, "DE", "real_estate", "Deutsche Wohnen", 14'500'000},
      {2019, "ES", "media", "La Liga", 250'000},
      {2019, "DK", "transport", "Taxa 4x35", 160'000},
      {2019, "PL", "internet", "Bisnode", 220'000},
      // 2020.
      {2020, "DE", "retail", "H&M", 35'258'708},
      {2020, "IT", "telecom", "TIM", 27'800'000},
      {2020, "GB", "transport", "British Airways", 22'046'000},
      {2020, "GB", "hospitality", "Marriott", 20'450'000},
      {2020, "IT", "telecom", "Wind Tre", 16'700'000},
      {2020, "IT", "telecom", "Vodafone Italia", 12'250'000},
      {2020, "FR", "retail", "Carrefour", 2'250'000},
      {2020, "SE", "internet", "Google (delisting)", 7'000'000},
      {2020, "FR", "health", "Two doctors (exposed imaging server)", 9'000},
      {2020, "ES", "finance", "BBVA", 5'000'000},
      {2020, "NO", "public", "Municipality of Oslo", 120'000},
      // 2021 — the 1.2 B peak.
      {2021, "LU", "internet", "Amazon Europe", 746'000'000},
      {2021, "IE", "internet", "WhatsApp", 225'000'000},
      {2021, "FR", "internet", "Facebook (cookies)", 60'000'000},
      {2021, "DE", "retail", "notebooksbilliger.de", 10'400'000},
      {2021, "ES", "telecom", "Vodafone Espana", 8'150'000},
      {2021, "ES", "finance", "Caixabank", 6'000'000},
      {2021, "NO", "internet", "Grindr", 6'300'000},
      {2021, "IT", "utilities", "Enel Energia (telemarketing)", 3'000'000},
      {2021, "NL", "transport", "TikTok (minors)", 750'000},
      {2021, "HU", "finance", "Budapest Bank", 2'000'000},
      {2021, "PL", "insurance", "Warta", 85'000},
      {2021, "ES", "utilities", "EDP Energia", 1'500'000},
      // 2022 (up to the paper's horizon).
      {2022, "IE", "internet", "Meta (Facebook)", 17'000'000},
      {2022, "IT", "internet", "Clearview AI", 20'000'000},
      {2022, "IT", "utilities", "Enel Energia", 26'500'000},
      {2022, "GR", "internet", "Clearview AI (Greece)", 20'000'000},
      {2022, "ES", "finance", "Google (data transfer)", 10'000'000},
      {2022, "FR", "retail", "Free Mobile", 300'000},
      {2022, "DK", "public", "Danske Bank", 1'340'000},
  };
  return kDataset;
}

std::map<int, double> TotalsByYear() {
  std::map<int, double> totals;
  for (const Fine& fine : Dataset()) {
    totals[fine.year] += fine.amount_eur;
  }
  return totals;
}

namespace {
std::map<std::string, std::pair<double, std::size_t>> BySector() {
  std::map<std::string, std::pair<double, std::size_t>> sectors;
  for (const Fine& fine : Dataset()) {
    auto& [amount, count] = sectors[fine.sector];
    amount += fine.amount_eur;
    ++count;
  }
  return sectors;
}
}  // namespace

std::vector<std::pair<std::string, double>> TopSectorsByAmount(
    std::size_t n) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [sector, stats] : BySector()) {
    out.emplace_back(sector, stats.first);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<std::pair<std::string, std::size_t>> TopSectorsByCount(
    std::size_t n) {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const auto& [sector, stats] : BySector()) {
    out.emplace_back(sector, stats.second);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace rgpdos::penalties
