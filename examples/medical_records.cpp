// Medical-records scenario — the CNIL case from the paper's introduction:
// "in 2020 the CNIL in France penalized two doctors (9K EUR) for hosting
// medical images on a server which was freely accessible on the
// Internet."
//
// Under rgpdOS the same mistake is structurally impossible: medical
// images live in DBFS behind the sentinel, so a probe from the outside
// domain (the freely-accessible-server scenario) is denied and audited,
// while legitimate care-team processing still works. High-sensitivity
// typing, short TTLs and crypto-erasure round out the scenario.
#include <cstdio>

#include "core/rgpdos.hpp"

using namespace rgpdos;

namespace {

constexpr std::string_view kTypes = R"(
type medical_image {
  fields {
    patient_name: string,
    modality: string,
    body_part: string,
    image_data: bytes
  };
  // Radiology review needs the pixels but not the identity.
  view v_radiology { modality, body_part, image_data };
  consent {
    diagnosis: all,
    radiology_review: v_radiology,
    marketing: none
  };
  origin: subject;
  age: 10Y;
  sensitivity: high;
}
type report {
  fields { summary: string };
  consent { diagnosis: all };
  origin: subject;
  sensitivity: high;
}
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  auto booted = core::RgpdOs::Boot(core::BootConfig{});
  if (!booted.ok()) return Fail(booted.status());
  auto& os = **booted;
  std::printf("== medical records under rgpdOS ==\n");

  if (auto declared = os.DeclareTypes(kTypes); !declared.ok()) {
    return Fail(declared.status());
  }

  // Admit two patients; their scans enter DBFS wrapped in membranes.
  auto type = os.dbfs().GetType(sentinel::Domain::kDed, "medical_image");
  if (!type.ok()) return Fail(type.status());
  Bytes scan_pixels(4096);
  for (std::size_t i = 0; i < scan_pixels.size(); ++i) {
    scan_pixels[i] = static_cast<std::uint8_t>(i * 13);
  }
  const struct {
    std::uint64_t subject;
    const char* name;
    const char* modality;
    const char* body_part;
  } scans[] = {{101, "Chiraz Benamor", "MRI", "knee"},
               {102, "Jean Dupont", "XRAY", "chest"}};
  for (const auto& s : scans) {
    membrane::Membrane m =
        (*type)->DefaultMembrane(s.subject, os.clock().Now());
    auto id = os.dbfs().Put(
        sentinel::Domain::kDed, s.subject, "medical_image",
        db::Row{db::Value(std::string(s.name)),
                db::Value(std::string(s.modality)),
                db::Value(std::string(s.body_part)),
                db::Value(scan_pixels)},
        std::move(m));
    if (!id.ok()) return Fail(id.status());
    std::printf("admitted %s (%s %s) as record %llu, sensitivity=high\n",
                s.name, s.modality, s.body_part,
                static_cast<unsigned long long>(*id));
  }

  // THE CNIL SCENARIO: an internet-facing probe tries to read the images
  // directly. The sentinel blocks it and the attempt is audited.
  std::printf("\n-- internet probe against the image store --\n");
  auto probe = os.dbfs().Get(sentinel::Domain::kOutside, 1);
  std::printf("outside read attempt: %s\n",
              probe.status().ToString().c_str());
  auto probe_scan =
      os.dbfs().RecordsOfType(sentinel::Domain::kOutside, "medical_image");
  std::printf("outside enumeration attempt: %s\n",
              probe_scan.status().ToString().c_str());
  const auto denials = os.audit().Query([](const sentinel::AuditEntry& e) {
    return !e.allowed && e.request.subject == sentinel::Domain::kOutside;
  });
  std::printf("audit trail recorded %zu denied outside accesses\n",
              denials.size());

  // Legitimate use: the radiology-review purpose sees pixels, never the
  // patient's name (data minimisation via the v_radiology view).
  std::printf("\n-- radiology review (de-identified view) --\n");
  core::ImplManifest manifest;
  manifest.claimed_purpose = "radiology_review";
  manifest.fields_read = {"modality", "body_part", "image_data"};
  manifest.output_type = "report";
  auto processing = os.RegisterProcessingSource(
      R"(purpose radiology_review {
           input: medical_image.v_radiology;
           output: report;
           description: "second reading of imaging studies";
         })",
      [](core::ProcessingInput& input) -> Result<core::ProcessingOutput> {
        core::ProcessingOutput output;
        if (input.Has("patient_name")) {
          return Internal("de-identification failed");
        }
        RGPD_ASSIGN_OR_RETURN(db::Value modality, input.Field("modality"));
        RGPD_ASSIGN_OR_RETURN(db::Value body_part, input.Field("body_part"));
        RGPD_ASSIGN_OR_RETURN(db::Value pixels, input.Field("image_data"));
        const std::size_t n = (*pixels.AsBytes()).size();
        output.derived_row = db::Row{db::Value(
            *modality.AsString() + " " + *body_part.AsString() + ": " +
            std::to_string(n) + " bytes reviewed, no anomaly")};
        return output;
      },
      manifest);
  if (!processing.ok()) return Fail(processing.status());
  auto review = os.ps().Invoke(sentinel::Domain::kApplication, *processing,
                               core::InvokeOptions{});
  if (!review.ok()) return Fail(review.status());
  std::printf("reviewed %llu studies without seeing any patient name; "
              "%zu reports derived\n",
              static_cast<unsigned long long>(review->records_processed),
              review->derived.size());

  // Patient 101 invokes the right to be forgotten. The image is sealed to
  // the supervisory authority (legal retention) and the plaintext is
  // destroyed everywhere, including the filesystem journal.
  std::printf("\n-- right to be forgotten for patient 101 --\n");
  auto erased = os.RightToBeForgotten(101);
  if (!erased.ok()) return Fail(erased.status());
  const Bytes needle = ToBytes("Chiraz Benamor");
  const std::uint64_t leaked =
      blockdev::CountBlocksContaining(os.dbfs_device(), needle);
  std::printf("erased %zu records; plaintext blocks remaining on device: "
              "%llu\n",
              *erased, static_cast<unsigned long long>(leaked));

  std::printf("\nmedical-records scenario complete.\n");
  return 0;
}
