// Quickstart: boot rgpdOS, declare a PD type, register a processing, and
// watch consent enforcement work.
//
//   $ ./examples/quickstart
//
// Walks through the minimal lifecycle: type declaration (Listing-1
// language) -> collection -> ps_register -> ps_invoke -> right of access.
#include <cstdio>

#include "core/rgpdos.hpp"

using namespace rgpdos;

namespace {

constexpr std::string_view kTypes = R"(
type customer {
  fields {
    email: string,
    city: string,
    age_years: int
  };
  view v_city { city };
  consent {
    newsletter: all,
    demographics: v_city
  };
  origin: subject;
  age: 2Y;
  sensitivity: medium;
}
type city_stat {
  fields { city: string };
  consent { demographics: all };
  origin: subject;
  sensitivity: low;
}
)";

constexpr std::string_view kDemographicsPurpose = R"(
purpose demographics {
  input: customer.v_city;
  output: city_stat;
  description: "aggregate customers per city";
}
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Boot the machine: DBFS + NPD filesystem + sentinel + PS + DED +
  //    authority escrow key.
  auto booted = core::RgpdOs::Boot(core::BootConfig{});
  if (!booted.ok()) return Fail(booted.status());
  auto& os = **booted;
  std::printf("== rgpdOS quickstart ==\n");

  // 2. Sysadmin declares the PD types.
  auto declared = os.DeclareTypes(kTypes);
  if (!declared.ok()) return Fail(declared.status());
  std::printf("declared %zu PD types\n", *declared);

  // 3. Collect some customer records (normally via the type's collection
  //    interface; here we store them through the DED as the acquisition
  //    built-in would).
  auto type = os.dbfs().GetType(sentinel::Domain::kDed, "customer");
  if (!type.ok()) return Fail(type.status());
  const struct {
    std::uint64_t subject;
    const char* email;
    const char* city;
    std::int64_t age;
  } people[] = {{1, "alice@example.eu", "Lyon", 34},
                {2, "bob@example.eu", "Rennes", 41},
                {3, "carol@example.eu", "Lyon", 28}};
  for (const auto& p : people) {
    membrane::Membrane m =
        (*type)->DefaultMembrane(p.subject, os.clock().Now());
    auto id = os.dbfs().Put(
        sentinel::Domain::kDed, p.subject, "customer",
        db::Row{db::Value(std::string(p.email)),
                db::Value(std::string(p.city)), db::Value(p.age)},
        std::move(m));
    if (!id.ok()) return Fail(id.status());
  }
  std::printf("stored %zu customer records (each wrapped in a membrane)\n",
              os.dbfs().record_count());

  // 4. Register a processing: purpose declaration + implementation +
  //    manifest. The implementation only sees the fields the view (and
  //    each subject's consent) exposes.
  core::ImplManifest manifest;
  manifest.claimed_purpose = "demographics";
  manifest.fields_read = {"city"};
  manifest.output_type = "city_stat";
  auto processing = os.RegisterProcessingSource(
      kDemographicsPurpose,
      [](core::ProcessingInput& input) -> Result<core::ProcessingOutput> {
        core::ProcessingOutput output;
        if (!input.Has("city")) return output;  // consent may hide it
        RGPD_ASSIGN_OR_RETURN(db::Value city, input.Field("city"));
        output.derived_row = db::Row{city};
        // Emails are NOT visible to this purpose:
        if (input.Has("email")) {
          return Internal("view leak! email should be hidden");
        }
        return output;
      },
      manifest);
  if (!processing.ok()) return Fail(processing.status());
  std::printf("registered processing #%llu (purpose 'demographics')\n",
              static_cast<unsigned long long>(*processing));

  // 5. Invoke it over every customer record.
  auto result = os.ps().Invoke(sentinel::Domain::kApplication, *processing,
                               core::InvokeOptions{});
  if (!result.ok()) return Fail(result.status());
  std::printf(
      "invoked: %llu considered, %llu processed, %llu filtered; "
      "%zu derived city_stat records (returned as refs)\n",
      static_cast<unsigned long long>(result->records_considered),
      static_cast<unsigned long long>(result->records_processed),
      static_cast<unsigned long long>(result->records_filtered_out),
      result->derived.size());

  // 6. Alice withdraws consent for demographics; reinvoke.
  auto alice_records =
      os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, 1);
  if (!alice_records.ok()) return Fail(alice_records.status());
  for (dbfs::RecordId id : *alice_records) {
    auto record = os.dbfs().Get(sentinel::Domain::kDed, id);
    if (record.ok() && record->type_name == "customer") {
      Status s = os.builtins().RevokeConsent(core::PdRef{id, "customer"},
                                             "demographics");
      if (!s.ok()) return Fail(s);
    }
  }
  result = os.ps().Invoke(sentinel::Domain::kApplication, *processing,
                          core::InvokeOptions{});
  if (!result.ok()) return Fail(result.status());
  std::printf(
      "after consent withdrawal: %llu processed, %llu filtered out\n",
      static_cast<unsigned long long>(result->records_processed),
      static_cast<unsigned long long>(result->records_filtered_out));

  // 7. Right of access: Alice asks what the operator holds about her.
  auto report = os.RightOfAccess(1);
  if (!report.ok()) return Fail(report.status());
  std::printf("\nright-of-access report for subject 1:\n%.*s...\n",
              static_cast<int>(std::min<std::size_t>(report->size(), 400)),
              report->c_str());

  std::printf("\nquickstart complete.\n");
  return 0;
}
