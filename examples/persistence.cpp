// Persistence — DBFS across process restarts.
//
// rgpdOS state must survive the machine: this example runs two phases in
// one process against a file-backed block device. Phase 1 formats DBFS,
// declares a type and stores records; phase 2 mounts the SAME device
// image from scratch (fresh InodeStore, fresh Dbfs, journal replay) and
// proves the schema tree, subject tree, membranes and record ids all
// came back — then exercises a simulated crash (journal-committed write
// without checkpoint) and recovers it on the next mount.
#include <cstdio>

#include "blockdev/file_block_device.hpp"
#include "dbfs/dbfs.hpp"
#include "dsl/parser.hpp"

using namespace rgpdos;

namespace {

constexpr std::string_view kType = R"(
type note {
  fields { author: string, text: string };
  consent { reading: all };
  origin: subject;
  sensitivity: medium;
}
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  const std::string image = "/tmp/rgpdos_persistence_demo.img";
  std::remove(image.c_str());
  SystemClock clock;
  sentinel::AuditSink audit;
  sentinel::Sentinel sentinel(sentinel::SecurityPolicy::RgpdDefault(),
                              &clock, &audit);
  std::printf("== DBFS persistence demo (%s) ==\n", image.c_str());

  dbfs::RecordId kept_record = 0;

  // ---- phase 1: format, populate, unmount ---------------------------------
  {
    auto device = blockdev::FileBlockDevice::Open(image, 4096, 2048);
    if (!device.ok()) return Fail(device.status());
    inodefs::InodeStore::Options options;
    options.inode_count = 256;
    options.journal_blocks = 128;
    auto store = inodefs::InodeStore::Format(device->get(), options, &clock);
    if (!store.ok()) return Fail(store.status());
    auto fs = dbfs::Dbfs::Format(store->get(), &sentinel, &clock);
    if (!fs.ok()) return Fail(fs.status());

    auto decl = dsl::ParseType(kType);
    if (!decl.ok()) return Fail(decl.status());
    if (Status s = (*fs)->CreateType(sentinel::Domain::kSysadmin, *decl);
        !s.ok()) {
      return Fail(s);
    }
    for (std::uint64_t subject = 1; subject <= 3; ++subject) {
      membrane::Membrane m = decl->DefaultMembrane(subject, clock.Now());
      auto id = (*fs)->Put(
          sentinel::Domain::kDed, subject, "note",
          db::Row{db::Value("author_" + std::to_string(subject)),
                  db::Value("a durable note from subject " +
                            std::to_string(subject))},
          std::move(m));
      if (!id.ok()) return Fail(id.status());
      kept_record = *id;
    }
    if (Status s = (*store)->Sync(); !s.ok()) return Fail(s);
    std::printf("phase 1: stored %zu records for %zu subjects, unmounted\n",
                (*fs)->record_count(), (*fs)->subject_count());
  }  // device closes: "power off"

  // ---- phase 2: remount and verify -----------------------------------------
  {
    auto device = blockdev::FileBlockDevice::Open(image, 4096, 2048);
    if (!device.ok()) return Fail(device.status());
    auto store = inodefs::InodeStore::Mount(device->get(), &clock);
    if (!store.ok()) return Fail(store.status());
    auto fs = dbfs::Dbfs::Mount(store->get(), &sentinel, &clock);
    if (!fs.ok()) return Fail(fs.status());
    std::printf("phase 2: mounted — %zu records, %zu subjects, types:",
                (*fs)->record_count(), (*fs)->subject_count());
    for (const std::string& name : (*fs)->TypeNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    auto record = (*fs)->Get(sentinel::Domain::kDed, kept_record);
    if (!record.ok()) return Fail(record.status());
    std::printf("phase 2: record %llu -> %s: \"%s\" (ttl=%lld, origin=%s)\n",
                static_cast<unsigned long long>(kept_record),
                record->row[0].AsString()->c_str(),
                record->row[1].AsString()->c_str(),
                static_cast<long long>(record->membrane.ttl),
                std::string(membrane::OriginName(record->membrane.origin))
                    .c_str());

    // Simulated crash: the update reaches the journal, never the data
    // region.
    (*store)->SetCrashBeforeCheckpoint(true);
    if (Status s = (*fs)->UpdateRow(
            sentinel::Domain::kDed, kept_record,
            db::Row{db::Value(std::string("author_3")),
                    db::Value(std::string("EDIT SURVIVED THE CRASH"))});
        !s.ok()) {
      return Fail(s);
    }
    std::printf("phase 2: wrote an update, then 'crashed' before the "
                "checkpoint\n");
  }

  // ---- phase 3: crash recovery ----------------------------------------------
  {
    auto device = blockdev::FileBlockDevice::Open(image, 4096, 2048);
    if (!device.ok()) return Fail(device.status());
    auto store = inodefs::InodeStore::Mount(device->get(), &clock);
    if (!store.ok()) return Fail(store.status());
    auto fs = dbfs::Dbfs::Mount(store->get(), &sentinel, &clock);
    if (!fs.ok()) return Fail(fs.status());
    auto record = (*fs)->Get(sentinel::Domain::kDed, kept_record);
    if (!record.ok()) return Fail(record.status());
    std::printf("phase 3: journal replay recovered the update: \"%s\"\n",
                record->row[1].AsString()->c_str());
  }

  std::remove(image.c_str());
  std::printf("\npersistence demo complete.\n");
  return 0;
}
