// Regulator audit — the right-of-access machinery from the regulator's
// side (paper §4): per-PD processing history, tamper-evident logs, the
// sentinel's denial trail, and GDPR-penalty statistics (Fig 1).
#include <algorithm>
#include <cstdio>

#include "core/regulator_export.hpp"
#include "core/rgpdos.hpp"
#include "penalties/penalties.hpp"
#include "sentinel/breach.hpp"

using namespace rgpdos;

namespace {

constexpr std::string_view kTypes = R"(
type account {
  fields { holder: string, iban: string, balance_cents: int };
  view v_balance { balance_cents };
  consent {
    fraud_detection: all,
    credit_scoring: v_balance,
    marketing: none
  };
  origin: subject;
  age: 5Y;
  sensitivity: high;
}
type risk_score {
  fields { score: int };
  consent { fraud_detection: all };
  origin: subject;
  sensitivity: medium;
}
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  auto booted = core::RgpdOs::Boot(core::BootConfig{});
  if (!booted.ok()) return Fail(booted.status());
  auto& os = **booted;
  std::printf("== regulator audit ==\n");

  if (auto d = os.DeclareTypes(kTypes); !d.ok()) return Fail(d.status());
  auto type = os.dbfs().GetType(sentinel::Domain::kDed, "account");
  if (!type.ok()) return Fail(type.status());
  for (std::uint64_t subject = 1; subject <= 5; ++subject) {
    membrane::Membrane m =
        (*type)->DefaultMembrane(subject, os.clock().Now());
    auto id = os.dbfs().Put(
        sentinel::Domain::kDed, subject, "account",
        db::Row{db::Value("holder_" + std::to_string(subject)),
                db::Value("FR76" + std::to_string(1000 + subject)),
                db::Value(std::int64_t(subject) * 12345)},
        std::move(m));
    if (!id.ok()) return Fail(id.status());
  }

  // Run two legitimate processings and one that gets filtered.
  core::ImplManifest scoring;
  scoring.claimed_purpose = "credit_scoring";
  scoring.fields_read = {"balance_cents"};
  scoring.output_type = "risk_score";
  auto credit = os.RegisterProcessingSource(
      R"(purpose credit_scoring {
           input: account.v_balance;
           output: risk_score;
           description: "score accounts by balance";
         })",
      [](core::ProcessingInput& input) -> Result<core::ProcessingOutput> {
        core::ProcessingOutput output;
        RGPD_ASSIGN_OR_RETURN(db::Value balance,
                              input.Field("balance_cents"));
        output.derived_row =
            db::Row{db::Value(*balance.AsInt() > 30000 ? std::int64_t{1}
                                                       : std::int64_t{5})};
        return output;
      },
      scoring);
  if (!credit.ok()) return Fail(credit.status());
  if (auto r = os.ps().Invoke(sentinel::Domain::kApplication, *credit, {});
      !r.ok()) {
    return Fail(r.status());
  }

  core::ImplManifest marketing;
  marketing.claimed_purpose = "marketing";
  auto ads = os.RegisterProcessingSource(
      "purpose marketing { input: account; }",
      [](core::ProcessingInput&) -> Result<core::ProcessingOutput> {
        return core::ProcessingOutput{};
      },
      marketing);
  if (!ads.ok()) return Fail(ads.status());
  if (auto r = os.ps().Invoke(sentinel::Domain::kApplication, *ads, {});
      !r.ok()) {
    return Fail(r.status());
  }

  // A hostile probing burst, for the denial trail and breach detector.
  for (int i = 0; i < 8; ++i) {
    (void)os.dbfs().Get(sentinel::Domain::kOutside, 1 + i);
  }

  // ---- The audit itself ---------------------------------------------------
  std::printf("\n-- processing log (per-PD history) --\n");
  const core::ProcessingLog& log = os.processing_log();
  std::printf("log entries: %zu, hash chain intact: %s\n",
              log.entries().size(), log.VerifyChain() ? "yes" : "NO");
  const auto subject3 = log.ForSubject(3);
  std::printf("history of subject 3's PD (%zu events):\n", subject3.size());
  for (const core::LogEntry& e : subject3) {
    std::printf("  [%llu] %s purpose=%s record=%llu outcome=%s %s\n",
                static_cast<unsigned long long>(e.seq),
                e.processing.c_str(), e.purpose.c_str(),
                static_cast<unsigned long long>(e.record_id),
                std::string(core::LogOutcomeName(e.outcome)).c_str(),
                e.detail.c_str());
  }

  std::printf("\n-- sentinel decisions --\n");
  std::printf("allowed: %llu, denied: %llu\n",
              static_cast<unsigned long long>(os.audit().allowed_count()),
              static_cast<unsigned long long>(os.audit().denied_count()));
  for (const sentinel::AuditEntry& e :
       os.audit().Query([](const sentinel::AuditEntry& entry) {
         return !entry.allowed;
       })) {
    std::printf("  DENIED %s -> %s (%s) %s\n",
                std::string(sentinel::DomainName(e.request.subject)).c_str(),
                std::string(sentinel::DomainName(e.request.object)).c_str(),
                std::string(sentinel::OperationName(e.request.op)).c_str(),
                e.request.detail.c_str());
  }

  // The structured bundle a supervisory authority actually receives:
  // deterministic JSONL derived from the durable hash-chained logs, so
  // two exports (or one before and one after a restart) diff clean.
  std::printf("\n-- structured regulator export (JSONL) --\n");
  const core::RegulatorExporter exporter(&log);
  auto subject_export = exporter.ExportSubject(3);
  if (!subject_export.ok()) return Fail(subject_export.status());
  std::printf("subject 3 processing history (%zu bytes):\n%s",
              subject_export->size(), subject_export->c_str());
  if (os.audit_pipeline() != nullptr) {
    if (auto f = os.audit_pipeline()->Flush(); !f.ok()) return Fail(f);
    auto trail = core::RegulatorExporter::ExportAuditTrail(
        &os.dbfs_store(), os.dbfs().audit_manifest_inode());
    if (!trail.ok()) return Fail(trail.status());
    const std::size_t lines =
        std::count(trail->begin(), trail->end(), '\n');
    std::printf("durable audit trail: %zu chain-verified decisions "
                "(%zu JSONL bytes)\n",
                lines > 0 ? lines - 1 : 0, trail->size());
  }

  std::printf("\n-- breach sweep (Art. 33) --\n");
  const auto breaches =
      sentinel::DetectBreaches(os.audit(), sentinel::BreachPolicy{});
  for (const sentinel::BreachFinding& finding : breaches) {
    std::printf("  %s\n", finding.notification.c_str());
  }
  if (breaches.empty()) std::printf("  no denial bursts found\n");

  std::printf("\n-- sensitivity segregation --\n");
  auto sensitivity = os.dbfs().ReportSensitivity(sentinel::Domain::kSysadmin);
  if (!sensitivity.ok()) return Fail(sensitivity.status());
  std::printf("  low=%zu medium=%zu high=%zu\n", sensitivity->by_level[0],
              sensitivity->by_level[1], sensitivity->by_level[2]);
  for (const auto& [type, count] : sensitivity->high_by_type) {
    std::printf("  high-sensitivity type '%s': %zu records\n", type.c_str(),
                count);
  }

  std::printf("\n-- what non-compliance costs (paper Fig 1) --\n");
  for (const auto& [year, total] : penalties::TotalsByYear()) {
    std::printf("  %d: %.1f MEUR\n", year, total / 1e6);
  }
  std::printf("  top sanctioned sectors by amount:\n");
  for (const auto& [sector, amount] : penalties::TopSectorsByAmount(5)) {
    std::printf("    %-12s %.1f MEUR\n", sector.c_str(), amount / 1e6);
  }

  std::printf("\nregulator audit complete.\n");
  return 0;
}
