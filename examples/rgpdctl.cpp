// rgpdctl — an interactive operator console for rgpdOS.
//
// Reads commands from stdin (or runs a scripted demo when stdin is not a
// list of commands). Shows the operator-facing workflow end to end:
//
//   declare <inline type source ...>   declare PD types (Listing-1 DSL)
//   types                              list declared types
//   put <type> <subject> <v1> <v2>...  store a record (default membrane)
//   get <record-id>                    DED-side record dump
//   subjects                           subject tree summary
//   revoke <record-id> <purpose>       withdraw consent (copy-group wide)
//   access <subject>                   right of access (JSON report)
//   forget <subject>                   right to be forgotten
//   recover <record-id>                authority-side envelope recovery
//   scavenge                           TTL sweep (crypto-erase expired PD)
//   audit                              sentinel decisions + breach sweep
//   log                                processing log
//   report                             sensitivity segregation report
//   help / quit
#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/rgpdos.hpp"
#include "dsl/lint.hpp"
#include "dsl/parser.hpp"
#include "sentinel/breach.hpp"

using namespace rgpdos;

namespace {

constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

class Console {
 public:
  explicit Console(core::RgpdOs* os) : os_(os) {}

  /// Execute one command line; returns false on "quit".
  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "declare") {
      std::string source;
      std::getline(in, source);
      // Privacy-by-design lint before the declaration lands.
      if (auto program = dsl::Parse(source); program.ok()) {
        for (const dsl::TypeDecl& decl : program->types) {
          for (const dsl::LintWarning& w : dsl::LintType(decl)) {
            std::printf("  lint[%s]: %s\n",
                        std::string(dsl::LintRuleName(w.rule)).c_str(),
                        w.detail.c_str());
          }
        }
      }
      Report(os_->DeclareTypes(source).status(), "declared");
    } else if (command == "types") {
      for (const std::string& name : os_->dbfs().TypeNames()) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (command == "put") {
      Put(in);
    } else if (command == "get") {
      Get(in);
    } else if (command == "subjects") {
      std::printf("  %zu subjects, %zu records\n",
                  os_->dbfs().subject_count(), os_->dbfs().record_count());
    } else if (command == "revoke") {
      std::uint64_t record = 0;
      std::string purpose;
      in >> record >> purpose;
      auto rec = os_->dbfs().Get(kDed, record);
      if (!rec.ok()) {
        Report(rec.status(), "");
        return true;
      }
      Report(os_->builtins().RevokeConsent(
                 core::PdRef{record, rec->type_name}, purpose),
             "consent revoked group-wide");
    } else if (command == "access") {
      std::uint64_t subject = 0;
      in >> subject;
      auto report = os_->RightOfAccess(subject);
      if (report.ok()) {
        std::printf("%s\n", report->c_str());
      } else {
        Report(report.status(), "");
      }
    } else if (command == "forget") {
      std::uint64_t subject = 0;
      in >> subject;
      auto erased = os_->RightToBeForgotten(subject);
      if (erased.ok()) {
        std::printf("  crypto-erased %zu records\n", *erased);
      } else {
        Report(erased.status(), "");
      }
    } else if (command == "recover") {
      std::uint64_t record = 0;
      in >> record;
      Recover(record);
    } else if (command == "scavenge") {
      auto scavenged =
          os_->builtins().ScavengeExpired(os_->authority().public_key());
      if (scavenged.ok()) {
        std::printf("  scavenged %zu expired records\n", *scavenged);
      } else {
        Report(scavenged.status(), "");
      }
    } else if (command == "audit") {
      Audit();
    } else if (command == "log") {
      for (const core::LogEntry& e : os_->processing_log().entries()) {
        std::printf("  [%llu] %s purpose=%s subject=%llu record=%llu %s\n",
                    static_cast<unsigned long long>(e.seq),
                    e.processing.c_str(), e.purpose.c_str(),
                    static_cast<unsigned long long>(e.subject_id),
                    static_cast<unsigned long long>(e.record_id),
                    std::string(core::LogOutcomeName(e.outcome)).c_str());
      }
      std::printf("  chain intact: %s\n",
                  os_->processing_log().VerifyChain() ? "yes" : "NO");
    } else if (command == "report") {
      auto report =
          os_->dbfs().ReportSensitivity(sentinel::Domain::kSysadmin);
      if (!report.ok()) {
        Report(report.status(), "");
        return true;
      }
      std::printf("  low=%zu medium=%zu high=%zu\n", report->by_level[0],
                  report->by_level[1], report->by_level[2]);
    } else {
      std::printf("  unknown command '%s' (try: help)\n", command.c_str());
    }
    return true;
  }

 private:
  static void Help() {
    std::printf(
        "  declare <dsl> | types | put <type> <subject> <values...> |\n"
        "  get <id> | subjects | revoke <id> <purpose> | access <subj> |\n"
        "  forget <subj> | recover <id> | scavenge | audit | log |\n"
        "  report | quit\n");
  }

  void Report(const Status& status, const char* ok_message) {
    if (status.ok()) {
      if (ok_message[0] != '\0') std::printf("  ok: %s\n", ok_message);
    } else {
      std::printf("  %s\n", status.ToString().c_str());
    }
  }

  void Put(std::istringstream& in) {
    std::string type_name;
    std::uint64_t subject = 0;
    in >> type_name >> subject;
    auto type = os_->dbfs().GetType(sentinel::Domain::kSysadmin, type_name);
    if (!type.ok()) {
      Report(type.status(), "");
      return;
    }
    db::Row row;
    for (const db::FieldDef& field : (*type)->fields) {
      std::string token;
      if (!(in >> token)) {
        std::printf("  missing value for field '%s'\n", field.name.c_str());
        return;
      }
      switch (field.type) {
        case db::ValueType::kInt:
          row.emplace_back(static_cast<std::int64_t>(std::stoll(token)));
          break;
        case db::ValueType::kDouble:
          row.emplace_back(std::stod(token));
          break;
        case db::ValueType::kBool:
          row.emplace_back(token == "true");
          break;
        default:
          row.emplace_back(token);
          break;
      }
    }
    membrane::Membrane m =
        (*type)->DefaultMembrane(subject, os_->clock().Now());
    auto id = os_->dbfs().Put(kDed, subject, type_name, row, std::move(m));
    if (id.ok()) {
      std::printf("  record %llu stored (membrane attached)\n",
                  static_cast<unsigned long long>(*id));
    } else {
      Report(id.status(), "");
    }
  }

  void Get(std::istringstream& in) {
    std::uint64_t record_id = 0;
    in >> record_id;
    auto record = os_->dbfs().Get(kDed, record_id);
    if (!record.ok()) {
      Report(record.status(), "");
      return;
    }
    std::printf("  record %llu type=%s subject=%llu erased=%s\n",
                static_cast<unsigned long long>(record->record_id),
                record->type_name.c_str(),
                static_cast<unsigned long long>(record->subject_id),
                record->erased ? "true" : "false");
    auto type = os_->dbfs().GetType(kDed, record->type_name);
    if (type.ok() && !record->erased) {
      for (std::size_t i = 0; i < (*type)->fields.size(); ++i) {
        std::printf("    %s = %s\n", (*type)->fields[i].name.c_str(),
                    record->row[i].ToDisplayString().c_str());
      }
    }
    std::printf("    consents:");
    for (const auto& [purpose, consent] : record->membrane.consents) {
      std::printf(" %s=%s", purpose.c_str(),
                  consent.kind == membrane::ConsentKind::kAll    ? "all"
                  : consent.kind == membrane::ConsentKind::kNone ? "none"
                                                                 : consent
                                                                       .view
                                                                       .c_str());
    }
    std::printf("\n");
  }

  void Recover(std::uint64_t record_id) {
    auto envelope = os_->dbfs().GetEnvelope(kDed, record_id);
    if (!envelope.ok()) {
      Report(envelope.status(), "");
      return;
    }
    auto plaintext = os_->authority().Recover(*envelope);
    if (!plaintext.ok()) {
      Report(plaintext.status(), "");
      return;
    }
    std::printf("  authority recovered %zu plaintext bytes\n",
                plaintext->size());
  }

  void Audit() {
    std::printf("  sentinel: %llu allowed, %llu denied\n",
                static_cast<unsigned long long>(
                    os_->audit().allowed_count()),
                static_cast<unsigned long long>(os_->audit().denied_count()));
    const auto breaches =
        sentinel::DetectBreaches(os_->audit(), sentinel::BreachPolicy{});
    for (const auto& finding : breaches) {
      std::printf("  BREACH: %s\n", finding.notification.c_str());
    }
    if (breaches.empty()) std::printf("  no denial bursts\n");
  }

  core::RgpdOs* os_;
};

// The scripted demo run when stdin has no commands (e.g. CI).
constexpr const char* kDemoScript[] = {
    "declare type user { fields { name: string, year: int }; "
    "consent { analytics: all }; origin: subject; sensitivity: high; }",
    "types",
    "put user 1 alice 1990",
    "put user 2 bob 1985",
    "subjects",
    "get 1",
    "revoke 1 analytics",
    "get 1",
    "access 2",
    "forget 2",
    "recover 2",
    "report",
    "audit",
    "log",
};

}  // namespace

int main(int argc, char** argv) {
  auto booted = core::RgpdOs::Boot(core::BootConfig{});
  if (!booted.ok()) {
    std::fprintf(stderr, "boot failed: %s\n",
                 booted.status().ToString().c_str());
    return 1;
  }
  Console console(booted->get());

  const bool interactive = argc > 1 && std::string(argv[1]) == "-i";
  if (interactive) {
    std::printf("rgpdctl — type 'help'\n");
    std::string line;
    while (std::printf("rgpdos> "), std::getline(std::cin, line)) {
      if (!console.Execute(line)) break;
    }
    return 0;
  }
  // Scripted demo.
  for (const char* line : kDemoScript) {
    std::printf("rgpdos> %s\n", line);
    console.Execute(line);
  }
  return 0;
}
