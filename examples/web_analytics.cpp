// Web analytics — the paper's Listings 1-3, end to end.
//
// A site collects `user` records through its web form, then runs
// purpose3 ("compute the age of the input user", Listing 2) over them.
// Subjects consented purpose3 only for the v_ano view, so the
// implementation sees year_of_birthdate and nothing else; purpose2 has no
// legitimate basis and every record is filtered out before execution.
#include <cstdio>

#include "core/rgpdos.hpp"

using namespace rgpdos;

namespace {

// Listing 1.
constexpr std::string_view kListing1 = R"(
type user {
  fields {
    name: string,
    pwd: string,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { year_of_birthdate };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: v_ano
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
type age {
  fields { value: int };
  consent { purpose1: all };
  origin: subject;
  sensitivity: low;
}
)";

// Listing 2's purpose, in the purpose language.
constexpr std::string_view kPurpose3 = R"(
purpose purpose3 {
  input: user.v_ano;
  output: age;
  description: "compute the age of the input user";
}
)";

// Listing 2's compute_age.
Result<core::ProcessingOutput> ComputeAge(core::ProcessingInput& user) {
  core::ProcessingOutput output;
  if (user.Has("year_of_birthdate")) {  // `if (user.age)` in the paper
    RGPD_ASSIGN_OR_RETURN(db::Value year, user.Field("year_of_birthdate"));
    output.derived_row = db::Row{db::Value(2026 - *year.AsInt())};
  } else {
    output.npd = ToBytes("age unavailable for this subject");
  }
  return output;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

// Listing 3's main(), fleshed out.
int main() {
  auto booted = core::RgpdOs::Boot(core::BootConfig{});
  if (!booted.ok()) return Fail(booted.status());
  auto& os = **booted;
  std::printf("== web analytics (paper Listings 1-3) ==\n");

  if (auto declared = os.DeclareTypes(kListing1); !declared.ok()) {
    return Fail(declared.status());
  }

  // The operator wires the web form: when ps_invoke asks for collection,
  // this source yields freshly submitted forms.
  os.ps().RegisterCollectionSource(
      "web_form",
      [](const membrane::CollectionInterface& interface)
          -> Result<std::vector<std::pair<dbfs::SubjectId, db::Row>>> {
        std::printf("collecting submissions via %s...\n",
                    interface.target.c_str());
        std::vector<std::pair<dbfs::SubjectId, db::Row>> forms;
        const struct {
          std::uint64_t subject;
          const char* name;
          std::int64_t year;
        } submissions[] = {{1, "alice", 1990},
                           {2, "bob", 1985},
                           {3, "carol", 2001},
                           {4, "dave", 1973}};
        for (const auto& s : submissions) {
          forms.emplace_back(
              s.subject,
              db::Row{db::Value(std::string(s.name)),
                      db::Value(std::string("hunter2")),
                      db::Value(s.year)});
        }
        return forms;
      });

  // ps_register(purpose3, compute_age).
  core::ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";
  auto purpose3 =
      os.RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  if (!purpose3.ok()) return Fail(purpose3.status());

  // ps_invoke(processing, no specific PD, collection=web_form, init=true).
  core::InvokeOptions options;
  options.collection_method = "web_form";
  options.collect_first = true;
  auto result =
      os.ps().Invoke(sentinel::Domain::kApplication, *purpose3, options);
  if (!result.ok()) return Fail(result.status());
  std::printf(
      "purpose3 over freshly collected users: %llu processed, %zu ages "
      "derived (as PdRefs)\n",
      static_cast<unsigned long long>(result->records_processed),
      result->derived.size());
  for (const core::PdRef& ref : result->derived) {
    auto record = os.dbfs().Get(sentinel::Domain::kDed, ref.record_id);
    if (!record.ok()) return Fail(record.status());
    std::printf("  subject %llu -> age %lld\n",
                static_cast<unsigned long long>(record->subject_id),
                static_cast<long long>(*record->row[0].AsInt()));
  }

  // purpose2 has default consent `none`: it executes zero times.
  core::ImplManifest manifest2;
  manifest2.claimed_purpose = "purpose2";
  auto purpose2 = os.RegisterProcessingSource(
      "purpose purpose2 { input: user; description: \"profiling\"; }",
      [](core::ProcessingInput&) -> Result<core::ProcessingOutput> {
        std::printf("  !!! purpose2 executed — this must not print\n");
        return core::ProcessingOutput{};
      },
      manifest2);
  if (!purpose2.ok()) return Fail(purpose2.status());
  auto blocked = os.ps().Invoke(sentinel::Domain::kApplication, *purpose2,
                                core::InvokeOptions{});
  if (!blocked.ok()) return Fail(blocked.status());
  std::printf(
      "purpose2 (no legitimate basis): %llu considered, %llu filtered "
      "out, %llu processed\n",
      static_cast<unsigned long long>(blocked->records_considered),
      static_cast<unsigned long long>(blocked->records_filtered_out),
      static_cast<unsigned long long>(blocked->records_processed));

  // Per-stage DED timings (the Fig-4 pipeline) for the purpose3 run.
  const core::StageTimings& t = result->timings;
  std::printf("\nDED pipeline breakdown (ns): type2req=%lld "
              "load_membrane=%lld filter=%lld load_data=%lld execute=%lld "
              "build_membrane=%lld store=%lld return=%lld\n",
              static_cast<long long>(t.type2req_ns),
              static_cast<long long>(t.load_membrane_ns),
              static_cast<long long>(t.filter_ns),
              static_cast<long long>(t.load_data_ns),
              static_cast<long long>(t.execute_ns),
              static_cast<long long>(t.build_membrane_ns),
              static_cast<long long>(t.store_ns),
              static_cast<long long>(t.return_ns));

  std::printf("\nweb-analytics scenario complete.\n");
  return 0;
}
