// Right to be forgotten, side by side (paper §1 + §4).
//
// The same delete request runs against:
//   (a) the Fig-2 baseline — a userspace DB engine on a journaling file
//       filesystem: the engine says "deleted", yet the raw device still
//       holds the plaintext (freed blocks + journal history);
//   (b) rgpdOS — crypto-erasure under the supervisory authority's key:
//       zero plaintext bytes remain anywhere, the operator cannot read
//       the record, but the authority can still recover it for a legal
//       investigation.
#include <cstdio>

#include "baseline/baseline_engine.hpp"
#include "core/rgpdos.hpp"
#include "dsl/parser.hpp"

using namespace rgpdos;

namespace {

constexpr std::string_view kUserType = R"(
type user {
  fields { name: string, email: string, year_of_birthdate: int };
  consent { service: all };
  origin: subject;
  sensitivity: medium;
}
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

constexpr const char* kSecretName = "FORGETME_Henriette_Durand";

}  // namespace

int main() {
  std::printf("== right to be forgotten: baseline vs rgpdOS ==\n");
  const Bytes needle = ToBytes(kSecretName);
  auto decl = dsl::ParseType(kUserType);
  if (!decl.ok()) return Fail(decl.status());

  // ---------------- (a) the Fig-2 baseline --------------------------------
  {
    SystemClock clock;
    blockdev::MemBlockDevice device(4096, 4096);
    inodefs::InodeStore::Options options;
    options.inode_count = 256;
    options.journal_blocks = 256;
    auto store = inodefs::InodeStore::Format(&device, options, &clock);
    if (!store.ok()) return Fail(store.status());
    auto fs = inodefs::FileSystem::Create(store->get());
    if (!fs.ok()) return Fail(fs.status());
    auto engine = baseline::BaselineEngine::Create(&*fs, "/db", &clock);
    if (!engine.ok()) return Fail(engine.status());
    if (Status s = engine->CreateType(*decl); !s.ok()) return Fail(s);

    auto id = engine->Insert(
        "user", 7,
        db::Row{db::Value(std::string(kSecretName)),
                db::Value(std::string("henriette@example.eu")),
                db::Value(std::int64_t{1962})});
    if (!id.ok()) return Fail(id.status());

    auto deleted = engine->DeleteSubject(7, /*compact=*/true);
    if (!deleted.ok()) return Fail(deleted.status());
    const bool engine_gone = engine->GetDataBySubject(7)->empty();
    const std::uint64_t leaked_blocks =
        blockdev::CountBlocksContaining(device, needle);
    std::printf(
        "\n[baseline] engine reports deleted: %s\n"
        "[baseline] raw device blocks still holding the plaintext: %llu\n"
        "[baseline] => the DB engine cannot honour the right to be "
        "forgotten on its own (paper Fig 2)\n",
        engine_gone ? "yes" : "no",
        static_cast<unsigned long long>(leaked_blocks));
  }

  // ---------------- (b) rgpdOS --------------------------------------------
  {
    auto booted = core::RgpdOs::Boot(core::BootConfig{});
    if (!booted.ok()) return Fail(booted.status());
    auto& os = **booted;
    if (auto d = os.DeclareTypes(kUserType); !d.ok()) return Fail(d.status());
    auto type = os.dbfs().GetType(sentinel::Domain::kDed, "user");
    if (!type.ok()) return Fail(type.status());
    membrane::Membrane m = (*type)->DefaultMembrane(7, os.clock().Now());
    auto id = os.dbfs().Put(
        sentinel::Domain::kDed, 7, "user",
        db::Row{db::Value(std::string(kSecretName)),
                db::Value(std::string("henriette@example.eu")),
                db::Value(std::int64_t{1962})},
        std::move(m));
    if (!id.ok()) return Fail(id.status());

    auto erased = os.RightToBeForgotten(7);
    if (!erased.ok()) return Fail(erased.status());
    const std::uint64_t leaked_blocks =
        blockdev::CountBlocksContaining(os.dbfs_device(), needle);
    std::printf(
        "\n[rgpdOS] records crypto-erased: %zu\n"
        "[rgpdOS] raw device blocks still holding the plaintext: %llu\n",
        *erased, static_cast<unsigned long long>(leaked_blocks));

    // Operator-side read: nothing.
    auto gone = os.dbfs().Get(sentinel::Domain::kDed, *id);
    if (!gone.ok()) return Fail(gone.status());
    std::printf("[rgpdOS] operator read: erased=%s, row fields=%zu\n",
                gone->erased ? "true" : "false", gone->row.size());

    // Authority-side recovery (legal investigation).
    auto envelope = os.dbfs().GetEnvelope(sentinel::Domain::kDed, *id);
    if (!envelope.ok()) return Fail(envelope.status());
    auto recovered = os.authority().Recover(*envelope);
    if (!recovered.ok()) return Fail(recovered.status());
    auto row = (*type)->ToSchema().DecodeRow(*recovered);
    if (!row.ok()) return Fail(row.status());
    std::printf(
        "[rgpdOS] supervisory authority recovers with its private key: "
        "name=%s\n",
        (*row)[0].AsString()->c_str());
  }

  std::printf("\nright-to-be-forgotten comparison complete.\n");
  return 0;
}
